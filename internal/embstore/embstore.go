// Package embstore is a sharded, concurrency-safe in-memory embedding
// store: the online half of the train → serialize → serve pipeline. A
// trained embedding matrix (from ehna or any baseline — they all emit a
// NumNodes×d tensor.Matrix) is bulk-loaded once, then served under
// concurrent reads with incremental upserts and deletes. Node IDs are
// hashed across N independently-locked shards so readers on different
// shards never contend, and snapshot save/load lets a daemon restart
// without retraining.
//
// Each shard stores its vectors in one dense structure-of-arrays slab
// plus an id→slot map. Scans walk the slab linearly — cache-friendly
// and allocation-free — instead of iterating a map of per-vector heap
// allocations, and bulk loads allocate one slab per shard rather than
// one slice per vector.
//
// The slab layout is precision-parametric (the compressed vector
// plane): F64 keeps the full float64 rows, F32 halves them to float32
// lanes, and SQ8 scalar-quantizes each vector to one int8 code per
// lane plus a per-vector {scale, offset, norm} sidecar (see
// vecmath.EncodeSQ8) — an ~8× cut in bytes moved per distance
// computation. Writes always enter as full-precision []float64 (the
// WAL keeps full-precision records; quantization happens at apply
// time), and reads hand out precision-tagged VecViews that the ann
// scoring kernels dispatch on.
package embstore

import (
	"encoding/gob"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
	"ehna/internal/wal"
)

// Precision selects the slab layout vectors are stored (and scanned)
// in. It is fixed at store construction; all write paths accept
// float64 and narrow on the way in.
type Precision int

const (
	// F64 stores full float64 rows: bit-exact, 8 bytes/lane.
	F64 Precision = iota
	// F32 stores float32 rows: ~1e-7 relative lane error, 4 bytes/lane.
	F32
	// SQ8 stores per-vector scalar-quantized int8 codes with a
	// {scale, offset, norm} sidecar: lane error ≤ scale/2, 1 byte/lane.
	SQ8
)

// String returns the precision's flag spelling.
func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case SQ8:
		return "sq8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision converts a config string to a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	case "sq8", "int8":
		return SQ8, nil
	default:
		return 0, fmt.Errorf("embstore: unknown precision %q (want f64, f32 or sq8)", s)
	}
}

// BytesPerVector reports the slab bytes one dim-dimensional vector
// occupies at this precision — payload plus per-vector sidecars (norm,
// and for SQ8 the decode parameters), excluding the id→slot map entry
// shared by all layouts.
func (p Precision) BytesPerVector(dim int) int {
	switch p {
	case F32:
		return 4*dim + 8 // float32 row + float64 norm
	case SQ8:
		return dim + 32 // int8 codes + {scale, offset, norm float64; codeSum int32} sidecar
	default:
		return 8*dim + 8 // float64 row + float64 norm
	}
}

// VecView is a precision-tagged, read-only view of one stored vector:
// exactly one of F64, F32 or Code is set (matching the store's
// precision). Views alias slab memory — valid only inside the
// With/RangeShard/WithShard callback that produced them, which receive
// a pointer to a stack-reused view (per-candidate struct copies would
// otherwise dwarf a compressed row's payload on the scan hot path).
type VecView struct {
	F64  []float64 // F64 stores
	F32  []float32 // F32 stores
	Code []int8    // SQ8 stores: decode is Offset + Scale·Code[i]

	// Scale and Offset are the SQ8 per-vector decode parameters;
	// CodeSum is Σ Code[i], the precomputed operand of the symmetric
	// dot kernel (vecmath.DotSQ8Sym) that ann's two-stage sq8 search
	// scores candidates with on SIMD backends.
	Scale, Offset float64
	CodeSum       int32

	// Norm is the L2 norm of the original full-precision vector,
	// maintained on write for all layouts.
	Norm float64
}

// SQ8Query is a query vector quantized with the same per-vector scalar
// scheme the SQ8 slabs use, produced by Store.EncodeQuery: the
// query-side operand of the symmetric int8×int8 kernel
// (vecmath.DotSQ8Sym) that drives candidate generation on SIMD
// backends. The asymmetric kernels keep consuming the original
// float64 query for re-ranking, so the final ordering never carries
// the query's quantization error.
type SQ8Query struct {
	Code          []int8
	Scale, Offset float64
	CodeSum       int32
}

// EncodeQuery quantizes q into dst for symmetric scoring against this
// store's SQ8 codes, reusing dst.Code's capacity (pooled query
// contexts call this once per search with zero steady-state
// allocations). Meaningful only on SQ8 stores; q must have the store's
// dimensionality.
func (s *Store) EncodeQuery(q []float64, dst *SQ8Query) {
	if len(q) != s.dim {
		panic(fmt.Sprintf("embstore: encode of %d-dim query against %d-dim store", len(q), s.dim))
	}
	if cap(dst.Code) < len(q) {
		dst.Code = make([]int8, len(q))
	}
	dst.Code = dst.Code[:len(q)]
	dst.Scale, dst.Offset, dst.CodeSum = vecmath.EncodeSQ8(q, dst.Code)
}

// Dim returns the vector's dimensionality.
func (v *VecView) Dim() int {
	switch {
	case v.F64 != nil:
		return len(v.F64)
	case v.F32 != nil:
		return len(v.F32)
	default:
		return len(v.Code)
	}
}

// DequantizeInto reconstructs the vector into dst (len must equal
// Dim): a copy for F64, a widening for F32, an SQ8 decode otherwise.
func (v *VecView) DequantizeInto(dst []float64) {
	switch {
	case v.F64 != nil:
		copy(dst, v.F64)
	case v.F32 != nil:
		vecmath.F32To64(dst, v.F32)
	default:
		vecmath.DecodeSQ8(dst, v.Code, v.Scale, v.Offset)
	}
}

// sq8Meta is the per-vector SQ8 sidecar, kept as one struct array so a
// candidate's decode parameters and norm land on a single cache line
// next to each other instead of four separate slab misses.
type sq8Meta struct {
	scale, offset, norm float64
	codeSum             int32
}

// baseSection is the immutable half of a cold (mmap-backed) shard: its
// slices alias a read-only v3 snapshot mapping, ids ascending so
// membership is a binary search instead of a heap-resident id→slot
// map. Mutations never touch it — an upsert lands in the shard's
// overlay slab and masks the base row via dead, a delete just masks —
// so the mapping stays clean and the overlay folds into a fresh base
// at the next snapshot rotation. Exactly one payload family is set,
// per store precision.
type baseSection struct {
	ids    []graph.NodeID
	norms  []float64
	vecs   []float64
	vecs32 []float32
	codes  []int8
	meta   []sq8Meta
	dead   map[graph.NodeID]struct{} // masked rows (deleted or overridden by the overlay)
	deadN  int
}

// maskedBase reports whether id's base row is masked. Callers hold the
// shard lock.
func (b *baseSection) maskedBase(id graph.NodeID) bool {
	_, masked := b.dead[id]
	return masked
}

// liveLen returns the number of unmasked base rows.
func (b *baseSection) liveLen() int { return len(b.ids) - b.deadN }

// shard is one lock domain of the store: a dense slab of vectors with
// an id→slot index. Deletes swap-remove so the slab stays dense.
// Exactly one of vecs/vecs32/codes is populated, per store precision.
// Cold stores additionally carry a base: the dense slab then acts as
// the delta overlay on top of the mapped image.
type shard struct {
	mu     sync.RWMutex
	slot   map[graph.NodeID]int
	ids    []graph.NodeID
	norms  []float64 // F64/F32: L2 norms, maintained on write
	vecs   []float64 // F64: row i is vecs[i*dim:(i+1)*dim]
	vecs32 []float32 // F32
	codes  []int8    // SQ8
	meta   []sq8Meta // SQ8
	base   *baseSection
}

// lookupLocked finds id in the overlay first (it wins by the mask
// invariant), then among the base's live rows. Caller holds sh.mu.
func (sh *shard) lookupLocked(id graph.NodeID) (slot int, inBase, ok bool) {
	if slot, ok := sh.slot[id]; ok {
		return slot, false, true
	}
	b := sh.base
	if b == nil {
		return 0, false, false
	}
	i, found := slices.BinarySearch(b.ids, id)
	if !found || b.maskedBase(id) {
		return 0, false, false
	}
	return i, true, true
}

// maskBase hides id's base row, if any: every overlay insert and every
// delete of a base-resident id routes through here so the base never
// shadows newer state. Caller holds sh.mu for writing.
func (sh *shard) maskBase(id graph.NodeID) {
	b := sh.base
	if b == nil {
		return
	}
	if _, found := slices.BinarySearch(b.ids, id); !found {
		return
	}
	if b.maskedBase(id) {
		return
	}
	if b.dead == nil {
		b.dead = make(map[graph.NodeID]struct{})
	}
	b.dead[id] = struct{}{}
	b.deadN++
}

// Store is a sharded in-memory map from node ID to embedding vector.
// All vectors share one dimensionality and precision, fixed at
// construction. Methods are safe for concurrent use.
type Store struct {
	dim    int
	prec   Precision
	shards []shard

	// cold is non-nil for mmap-backed stores (see OpenMmap): it owns
	// the snapshot mapping the shard bases alias. Swapped atomically by
	// Remap so stats readers never race the rotation fold.
	cold atomic.Pointer[coldInfo]
}

// coldInfo describes the mapped snapshot backing a cold store.
type coldInfo struct {
	path         string
	data         []byte // whole-file mapping
	payloadBytes int64  // vector-slab bytes within it
}

// Cold reports whether the store serves its base tier from an mmap'd
// snapshot rather than heap slabs.
func (s *Store) Cold() bool { return s.cold.Load() != nil }

// MappedBytes returns the size of the snapshot mapping backing a cold
// store (0 for RAM stores).
func (s *Store) MappedBytes() int64 {
	if c := s.cold.Load(); c != nil {
		return int64(len(c.data))
	}
	return 0
}

// MappedPayloadBytes returns the vector-slab bytes within the mapping
// (0 for RAM stores): the denominator of the cold tier's residency
// ratio.
func (s *Store) MappedPayloadBytes() int64 {
	if c := s.cold.Load(); c != nil {
		return c.payloadBytes
	}
	return 0
}

// MappedPath returns the path of the snapshot backing a cold store.
func (s *Store) MappedPath() string {
	if c := s.cold.Load(); c != nil {
		return c.path
	}
	return ""
}

// OverlayStats reports the delta overlay of a cold store: vectors
// resident in heap slabs on top of the base, their approximate slab
// bytes, and base rows masked by deletes or overwrites. All zero for
// RAM stores (the slab is the store, not an overlay).
func (s *Store) OverlayStats() (vectors int, bytes int64, masked int) {
	if !s.Cold() {
		return 0, 0, 0
	}
	per := int64(s.prec.BytesPerVector(s.dim))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		vectors += len(sh.ids)
		if sh.base != nil {
			masked += sh.base.deadN
		}
		sh.mu.RUnlock()
	}
	return vectors, int64(vectors) * per, masked
}

// DefaultShards is the shard count used when a non-positive count is
// requested. 16 keeps per-shard maps small without measurable overhead
// at single-digit shard occupancy.
const DefaultShards = 16

// viewPool recycles the VecViews the accessors hand to callbacks.
// Passing &view to an arbitrary callback defeats escape analysis, so a
// stack view would be re-heap-allocated per call; the pool keeps the
// zero-alloc guarantee of the scan paths (one Get/Put per accessor
// call, amortized over every row it visits).
var viewPool = sync.Pool{New: func() any { return new(VecView) }}

// getView checks a view out of the pool with its payload fields
// cleared: pooled views travel between stores of different precisions,
// and fillView only writes its own precision's fields.
func getView() *VecView {
	v := viewPool.Get().(*VecView)
	v.F64, v.F32, v.Code = nil, nil, nil
	return v
}

// New returns an empty full-precision (F64) store for dim-dimensional
// vectors with the given shard count (DefaultShards when shards <= 0).
func New(dim, shards int) (*Store, error) {
	return NewPrecision(dim, shards, F64)
}

// NewPrecision is New with an explicit slab precision.
func NewPrecision(dim, shards int, prec Precision) (*Store, error) {
	if dim < 1 {
		return nil, fmt.Errorf("embstore: dimension %d < 1", dim)
	}
	if prec != F64 && prec != F32 && prec != SQ8 {
		return nil, fmt.Errorf("embstore: unknown precision %d", prec)
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	s := &Store{dim: dim, prec: prec, shards: make([]shard, shards)}
	for i := range s.shards {
		s.shards[i].slot = make(map[graph.NodeID]int)
	}
	return s, nil
}

// FromMatrix builds an F64 store from an embedding matrix, assigning
// row i to node ID i — the layout produced by Model.InferAll and every
// baseline.
func FromMatrix(emb *tensor.Matrix, shards int) (*Store, error) {
	return FromMatrixPrecision(emb, shards, F64)
}

// FromMatrixPrecision is FromMatrix at an explicit precision; rows are
// narrowed/quantized as they load.
func FromMatrixPrecision(emb *tensor.Matrix, shards int, prec Precision) (*Store, error) {
	s, err := NewPrecision(emb.Cols, shards, prec)
	if err != nil {
		return nil, err
	}
	s.BulkLoad(emb)
	return s, nil
}

// FromModelSnapshot builds an F64 store holding the raw embedding table
// of an ehna model snapshot (see ehna.LoadEmbeddingTable).
func FromModelSnapshot(r io.Reader, shards int) (*Store, error) {
	return FromModelSnapshotPrecision(r, shards, F64)
}

// FromModelSnapshotPrecision is FromModelSnapshot at an explicit
// precision.
func FromModelSnapshotPrecision(r io.Reader, shards int, prec Precision) (*Store, error) {
	emb, err := ehna.LoadEmbeddingTable(r)
	if err != nil {
		return nil, err
	}
	return FromMatrixPrecision(emb, shards, prec)
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Precision returns the slab precision vectors are stored in.
func (s *Store) Precision() Precision { return s.prec }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf returns the index of the shard holding id. Batch consumers
// (e.g. LSH re-ranking) group IDs by shard so each shard's lock is
// taken once per batch instead of once per vector.
func (s *Store) ShardOf(id graph.NodeID) int { return s.shardIndex(id) }

// shardIndex hashes id onto a shard index. The multiply-xorshift mix
// (splitmix-style finalizer) decorrelates the low bits so sequential
// node IDs spread evenly.
func (s *Store) shardIndex(id graph.NodeID) int {
	x := uint32(id)
	x ^= x >> 16
	x *= 0x45d9f3b
	x ^= x >> 16
	// Reduce in uint32: int(x) is negative for half of all hashes on
	// 32-bit platforms, and Go's % would preserve the sign.
	return int(x % uint32(len(s.shards)))
}

func (s *Store) shardFor(id graph.NodeID) *shard {
	return &s.shards[s.shardIndex(id)]
}

// Len returns the number of stored vectors.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.ids)
		if sh.base != nil {
			n += sh.base.liveLen()
		}
		sh.mu.RUnlock()
	}
	return n
}

// fillView points v at the slot'th vector of the shard. Caller holds
// the shard lock. Only the fields the store's precision uses are
// written, so a stack view can be refilled per candidate without
// re-zeroing the whole struct.
func (s *Store) fillView(sh *shard, slot int, v *VecView) {
	dim := s.dim
	switch s.prec {
	case F32:
		v.F32 = sh.vecs32[slot*dim : (slot+1)*dim]
		v.Norm = sh.norms[slot]
	case SQ8:
		m := &sh.meta[slot]
		v.Code = sh.codes[slot*dim : (slot+1)*dim]
		v.Scale, v.Offset, v.CodeSum, v.Norm = m.scale, m.offset, m.codeSum, m.norm
	default:
		v.F64 = sh.vecs[slot*dim : (slot+1)*dim]
		v.Norm = sh.norms[slot]
	}
}

// fillBaseView is fillView against a shard's mapped base: the view
// aliases the snapshot mapping directly (zero-copy — this is cold
// mode's whole point), so the same lifetime rules apply.
func (s *Store) fillBaseView(b *baseSection, slot int, v *VecView) {
	dim := s.dim
	switch s.prec {
	case F32:
		v.F32 = b.vecs32[slot*dim : (slot+1)*dim]
		v.Norm = b.norms[slot]
	case SQ8:
		m := &b.meta[slot]
		v.Code = b.codes[slot*dim : (slot+1)*dim]
		v.Scale, v.Offset, v.CodeSum, v.Norm = m.scale, m.offset, m.codeSum, m.norm
	default:
		v.F64 = b.vecs[slot*dim : (slot+1)*dim]
		v.Norm = b.norms[slot]
	}
}

// fillAt dispatches between the overlay slab and the mapped base.
func (s *Store) fillAt(sh *shard, slot int, inBase bool, v *VecView) {
	if inBase {
		s.fillBaseView(sh.base, slot, v)
	} else {
		s.fillView(sh, slot, v)
	}
}

// extend grows s by n zero elements. The reused-capacity path must
// clear explicitly: after a swap-remove shrink the spare capacity
// still holds the deleted row's bytes.
func extend[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		s = s[: len(s)+n : cap(s)]
		clear(s[len(s)-n:])
		return s
	}
	return append(s, make([]T, n)...)
}

// ensureSlot returns id's slot, appending a fresh zero row when the id
// is new. Caller holds sh.mu.
func (sh *shard) ensureSlot(s *Store, id graph.NodeID) int {
	slot, ok := sh.slot[id]
	if ok {
		return slot
	}
	slot = len(sh.ids)
	sh.slot[id] = slot
	sh.ids = append(sh.ids, id)
	switch s.prec {
	case F64:
		sh.vecs = extend(sh.vecs, s.dim)
		sh.norms = append(sh.norms, 0)
	case F32:
		sh.vecs32 = extend(sh.vecs32, s.dim)
		sh.norms = append(sh.norms, 0)
	case SQ8:
		sh.codes = extend(sh.codes, s.dim)
		sh.meta = append(sh.meta, sq8Meta{})
	}
	return slot
}

// upsertLocked inserts or replaces id's vector, narrowing/quantizing
// per the store precision. norm is the caller's L2 norm of vec (the
// original full-precision value the cosine path divides by). Caller
// holds sh.mu.
func (sh *shard) upsertLocked(s *Store, id graph.NodeID, vec []float64, norm float64) {
	sh.maskBase(id)
	slot := sh.ensureSlot(s, id)
	dim := s.dim
	switch s.prec {
	case F64:
		copy(sh.vecs[slot*dim:(slot+1)*dim], vec)
		sh.norms[slot] = norm
	case F32:
		vecmath.F64To32(sh.vecs32[slot*dim:(slot+1)*dim], vec)
		sh.norms[slot] = norm
	case SQ8:
		scale, offset, codeSum := vecmath.EncodeSQ8(vec, sh.codes[slot*dim:(slot+1)*dim])
		sh.meta[slot] = sq8Meta{scale: scale, offset: offset, norm: norm, codeSum: codeSum}
	}
}

// BulkLoad upserts row i of emb as node ID i for every row. It panics on
// dimension mismatch (programmer error, matching tensor conventions).
// Rows are copied; the caller keeps ownership of emb. Each shard's slab
// is grown once, so the load performs O(shards) allocations rather than
// one per vector.
func (s *Store) BulkLoad(emb *tensor.Matrix) {
	if emb.Cols != s.dim {
		panic(fmt.Sprintf("embstore: bulk load of %d-dim rows into %d-dim store", emb.Cols, s.dim))
	}
	// Group rows per shard first so each shard's lock is taken once.
	groups := make([][]graph.NodeID, len(s.shards))
	for i := 0; i < emb.Rows; i++ {
		id := graph.NodeID(i)
		idx := s.shardIndex(id)
		groups[idx] = append(groups[idx], id)
	}
	var wg sync.WaitGroup
	for idx := range groups {
		if len(groups[idx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, ids []graph.NodeID) {
			defer wg.Done()
			sh.mu.Lock()
			sh.reserveLocked(s, len(ids))
			for _, id := range ids {
				row := emb.Row(int(id))
				sh.upsertLocked(s, id, row, vecmath.Norm(row))
			}
			sh.mu.Unlock()
		}(&s.shards[idx], groups[idx])
	}
	wg.Wait()
}

// reserveLocked pre-grows the shard's slabs for extra more vectors.
// Caller holds sh.mu.
func (sh *shard) reserveLocked(s *Store, extra int) {
	n := len(sh.ids) + extra
	if cap(sh.ids) < n {
		sh.ids = append(make([]graph.NodeID, 0, n), sh.ids...)
	}
	switch s.prec {
	case F64:
		if cap(sh.vecs) < n*s.dim {
			sh.vecs = append(make([]float64, 0, n*s.dim), sh.vecs...)
		}
	case F32:
		if cap(sh.vecs32) < n*s.dim {
			sh.vecs32 = append(make([]float32, 0, n*s.dim), sh.vecs32...)
		}
	case SQ8:
		if cap(sh.codes) < n*s.dim {
			sh.codes = append(make([]int8, 0, n*s.dim), sh.codes...)
		}
		if cap(sh.meta) < n {
			sh.meta = append(make([]sq8Meta, 0, n), sh.meta...)
		}
	}
	if s.prec != SQ8 && cap(sh.norms) < n {
		sh.norms = append(make([]float64, 0, n), sh.norms...)
	}
}

// Upsert inserts or replaces the vector for id. The vector is copied
// (and narrowed/quantized per the store precision).
func (s *Store) Upsert(id graph.NodeID, vec []float64) error {
	return s.upsertNorm(id, vec, vecmath.Norm(vec))
}

// upsertNorm is Upsert with a caller-supplied norm: the snapshot
// conversion path threads the original-vector norm through so a
// narrowed store still divides by the exact denominator.
func (s *Store) upsertNorm(id graph.NodeID, vec []float64, norm float64) error {
	if len(vec) != s.dim {
		return fmt.Errorf("embstore: upsert of %d-dim vector into %d-dim store", len(vec), s.dim)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.upsertLocked(s, id, vec, norm)
	sh.mu.Unlock()
	return nil
}

// Delete removes id, reporting whether it was present. The last vector
// of the shard's slab is swapped into the vacated slot so scans stay
// dense.
func (s *Store) Delete(id graph.NodeID) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.slot[id]
	if !ok {
		// Not in the overlay: a live base row is deleted by masking it
		// (the mapping is read-only).
		if b := sh.base; b != nil {
			if _, found := slices.BinarySearch(b.ids, id); found && !b.maskedBase(id) {
				sh.maskBase(id)
				return true
			}
		}
		return false
	}
	dim := s.dim
	last := len(sh.ids) - 1
	if slot != last {
		movedID := sh.ids[last]
		sh.ids[slot] = movedID
		switch s.prec {
		case F64:
			copy(sh.vecs[slot*dim:(slot+1)*dim], sh.vecs[last*dim:(last+1)*dim])
			sh.norms[slot] = sh.norms[last]
		case F32:
			copy(sh.vecs32[slot*dim:(slot+1)*dim], sh.vecs32[last*dim:(last+1)*dim])
			sh.norms[slot] = sh.norms[last]
		case SQ8:
			copy(sh.codes[slot*dim:(slot+1)*dim], sh.codes[last*dim:(last+1)*dim])
			sh.meta[slot] = sh.meta[last]
		}
		sh.slot[movedID] = slot
	}
	sh.ids = sh.ids[:last]
	switch s.prec {
	case F64:
		sh.vecs = sh.vecs[:last*dim]
		sh.norms = sh.norms[:last]
	case F32:
		sh.vecs32 = sh.vecs32[:last*dim]
		sh.norms = sh.norms[:last]
	case SQ8:
		sh.codes = sh.codes[:last*dim]
		sh.meta = sh.meta[:last]
	}
	delete(sh.slot, id)
	return true
}

// Get returns a full-precision copy of the vector for id, dequantized
// from whatever the slab stores.
func (s *Store) Get(id graph.NodeID) ([]float64, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	slot, inBase, ok := sh.lookupLocked(id)
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	out := make([]float64, s.dim)
	v := getView()
	s.fillAt(sh, slot, inBase, v)
	v.DequantizeInto(out)
	viewPool.Put(v)
	sh.mu.RUnlock()
	return out, true
}

// With runs fn on the stored vector for id under the shard read lock,
// avoiding the copy Get makes. The view aliases slab memory: fn must
// not retain it (or the pointer) or call any mutating Store method
// (the shard lock is held). Reports presence.
func (s *Store) With(id graph.NodeID, fn func(v *VecView)) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	slot, inBase, ok := sh.lookupLocked(id)
	if ok {
		v := getView()
		s.fillAt(sh, slot, inBase, v)
		fn(v)
		viewPool.Put(v)
	}
	sh.mu.RUnlock()
	return ok
}

// RangeShard iterates shard i under its read lock, stopping when fn
// returns false. The view passed to fn aliases slab memory and is
// reused across iterations: fn must not retain it or call any
// mutating Store method. Iterating shards from separate goroutines is
// how ann parallelizes exact search. Iteration order is the dense
// slab order (insertion order, perturbed by swap-remove deletes). The
// per-precision loops keep the scan tight: one slice header and one
// sidecar load per row, no precision switch per candidate.
func (s *Store) RangeShard(i int, fn func(id graph.NodeID, v *VecView) bool) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	dim := s.dim
	v := getView()
	defer viewPool.Put(v)
	switch s.prec {
	case F32:
		for slot, id := range sh.ids {
			v.F32 = sh.vecs32[slot*dim : (slot+1)*dim]
			v.Norm = sh.norms[slot]
			if !fn(id, v) {
				return
			}
		}
	case SQ8:
		for slot, id := range sh.ids {
			m := &sh.meta[slot]
			v.Code = sh.codes[slot*dim : (slot+1)*dim]
			v.Scale, v.Offset, v.CodeSum, v.Norm = m.scale, m.offset, m.codeSum, m.norm
			if !fn(id, v) {
				return
			}
		}
	default:
		for slot, id := range sh.ids {
			v.F64 = sh.vecs[slot*dim : (slot+1)*dim]
			v.Norm = sh.norms[slot]
			if !fn(id, v) {
				return
			}
		}
	}
	b := sh.base
	if b == nil {
		return
	}
	// Cold stores continue into the mapped base, skipping masked rows;
	// the per-precision loops stay as tight as the overlay's, the only
	// added work the (usually empty) mask probe.
	switch s.prec {
	case F32:
		for slot, id := range b.ids {
			if b.maskedBase(id) {
				continue
			}
			v.F32 = b.vecs32[slot*dim : (slot+1)*dim]
			v.Norm = b.norms[slot]
			if !fn(id, v) {
				return
			}
		}
	case SQ8:
		for slot, id := range b.ids {
			if b.maskedBase(id) {
				continue
			}
			m := &b.meta[slot]
			v.Code = b.codes[slot*dim : (slot+1)*dim]
			v.Scale, v.Offset, v.CodeSum, v.Norm = m.scale, m.offset, m.codeSum, m.norm
			if !fn(id, v) {
				return
			}
		}
	default:
		for slot, id := range b.ids {
			if b.maskedBase(id) {
				continue
			}
			v.F64 = b.vecs[slot*dim : (slot+1)*dim]
			v.Norm = b.norms[slot]
			if !fn(id, v) {
				return
			}
		}
	}
}

// WithShard looks up each of ids (all of which must hash to shard i —
// see ShardOf) under a single acquisition of the shard's read lock,
// invoking fn for every ID that is present. The batch analogue of
// With for consumers that score many candidates per query; the view is
// reused across invocations like RangeShard's.
func (s *Store) WithShard(i int, ids []graph.NodeID, fn func(id graph.NodeID, v *VecView)) {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v := getView()
	defer viewPool.Put(v)
	for _, id := range ids {
		if slot, inBase, ok := sh.lookupLocked(id); ok {
			s.fillAt(sh, slot, inBase, v)
			fn(id, v)
		}
	}
}

// IDs returns all stored node IDs in ascending order.
func (s *Store) IDs() []graph.NodeID {
	out := make([]graph.NodeID, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out = append(out, sh.ids...)
		if b := sh.base; b != nil {
			for _, id := range b.ids {
				if !b.maskedBase(id) {
					out = append(out, id)
				}
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyWAL applies one write-ahead-log record to the store: the replay
// hook crash recovery and reference-state tests drive. WAL records
// carry full-precision vectors; narrowing/quantization happens here,
// at apply time, so durability semantics are precision-independent.
// Replaying a log suffix in sequence order over any state at-or-before
// that suffix reconverges, because upsert/delete are last-writer-wins.
func (s *Store) ApplyWAL(r wal.Record) error {
	switch r.Op {
	case wal.OpUpsert:
		return s.Upsert(r.ID, r.Vec)
	case wal.OpDelete:
		s.Delete(r.ID)
		return nil
	default:
		return fmt.Errorf("embstore: apply of unknown wal op %d", r.Op)
	}
}

// viewEqual compares two same-precision views representation-for-
// representation (bit-identical lanes/codes and sidecars).
func viewEqual(a, b *VecView) bool {
	switch {
	case a.F64 != nil:
		if b.F64 == nil {
			return false
		}
		for i := range a.F64 {
			if a.F64[i] != b.F64[i] {
				return false
			}
		}
	case a.F32 != nil:
		if b.F32 == nil {
			return false
		}
		for i := range a.F32 {
			if a.F32[i] != b.F32[i] {
				return false
			}
		}
	default:
		if b.Code == nil || a.Scale != b.Scale || a.Offset != b.Offset {
			return false
		}
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				return false
			}
		}
	}
	return a.Norm == b.Norm
}

// Equal reports whether two stores hold identical contents (same IDs,
// same precision, bit-identical slab representations), regardless of
// shard count. It takes read locks shard by shard; quiesce writers for
// a meaningful answer.
func (s *Store) Equal(o *Store) bool {
	if s.dim != o.dim || s.prec != o.prec || s.Len() != o.Len() {
		return false
	}
	equal := true
	for i := range s.shards {
		s.RangeShard(i, func(id graph.NodeID, v *VecView) bool {
			ok := o.With(id, func(ov *VecView) {
				if !viewEqual(v, ov) {
					equal = false
				}
			})
			if !ok {
				equal = false
			}
			return equal
		})
		if !equal {
			return false
		}
	}
	return true
}

// storeWire is the gob wire format of a snapshot: IDs ascending,
// payload concatenated in the same order, so identical contents always
// produce identical bytes.
//
// Version history:
//
//	1 — float64 only: {Dim, Watermark, IDs, Data}. Still loadable;
//	    LoadSnapshotAt upconverts (requantizes) into any precision.
//	2 — adds Precision and the F32/SQ8 payload fields (Data32, Codes,
//	    Scales/Offsets sidecars, Norms). Exactly one payload family is
//	    populated, per the writing store's precision.
//
// Watermark carries the WAL sequence number the snapshot covers (0 for
// snapshots taken outside a WAL pipeline).
type storeWire struct {
	Version   int
	Dim       int
	Watermark uint64
	IDs       []graph.NodeID
	Data      []float64 // v1, and v2 at precision f64
	Precision int       // v2 (zero value f64 matches v1's implicit precision)
	Data32    []float32 // v2 f32 rows
	Codes     []int8    // v2 sq8 codes
	Scales    []float64 // v2 sq8 per-vector decode scale
	Offsets   []float64 // v2 sq8 per-vector decode offset
	Norms     []float64 // v2 f32/sq8: original-vector L2 norms
}

// storeSnapshotVersion is the version written by Save; loaders accept
// every version at or below it.
const storeSnapshotVersion = 2

// Save writes a snapshot of the store to w in its native precision.
// Concurrent upserts during Save are each either fully included or
// fully absent (per-vector atomicity via the shard locks); for a
// point-in-time image, quiesce writers first.
func (s *Store) Save(w io.Writer) error { return s.SaveSnapshot(w, 0) }

// SaveSnapshot is Save stamping the snapshot with a WAL watermark: the
// sequence number through which the image is known complete. On boot,
// LoadSnapshot hands the watermark back so replay can skip everything
// the snapshot already contains. The caller must guarantee all records
// ≤ watermark were applied before SaveSnapshot starts; records applied
// concurrently (seq > watermark) may bleed into the image, which
// replay-idempotence makes harmless.
func (s *Store) SaveSnapshot(w io.Writer, watermark uint64) error {
	ids := s.IDs()
	wire := storeWire{
		Version:   storeSnapshotVersion,
		Dim:       s.dim,
		Watermark: watermark,
		Precision: int(s.prec),
		IDs:       make([]graph.NodeID, 0, len(ids)),
	}
	switch s.prec {
	case F64:
		wire.Data = make([]float64, 0, len(ids)*s.dim)
	case F32:
		wire.Data32 = make([]float32, 0, len(ids)*s.dim)
		wire.Norms = make([]float64, 0, len(ids))
	case SQ8:
		wire.Codes = make([]int8, 0, len(ids)*s.dim)
		wire.Scales = make([]float64, 0, len(ids))
		wire.Offsets = make([]float64, 0, len(ids))
		wire.Norms = make([]float64, 0, len(ids))
	}
	for _, id := range ids {
		// IDs and payload are appended together under the same read lock,
		// so an ID deleted between IDs() and here is omitted entirely
		// rather than resurrected as a zero row.
		s.With(id, func(v *VecView) {
			wire.IDs = append(wire.IDs, id)
			switch s.prec {
			case F64:
				wire.Data = append(wire.Data, v.F64...)
			case F32:
				wire.Data32 = append(wire.Data32, v.F32...)
				wire.Norms = append(wire.Norms, v.Norm)
			case SQ8:
				wire.Codes = append(wire.Codes, v.Code...)
				wire.Scales = append(wire.Scales, v.Scale)
				wire.Offsets = append(wire.Offsets, v.Offset)
				wire.Norms = append(wire.Norms, v.Norm)
			}
		})
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("embstore: save: %v", err)
	}
	return nil
}

// validate rejects structurally corrupt wire images: unknown versions
// or precisions, and payloads or sidecars whose lengths disagree with
// the ID count (a truncated or hand-damaged sidecar must fail loudly,
// not load as garbage vectors).
func (wire *storeWire) validate() error {
	if wire.Version < 1 || wire.Version > storeSnapshotVersion {
		return fmt.Errorf("embstore: load: snapshot version %d, want 1..%d", wire.Version, storeSnapshotVersion)
	}
	if wire.Dim < 1 {
		return fmt.Errorf("embstore: load: corrupt snapshot: dim %d", wire.Dim)
	}
	n := len(wire.IDs)
	switch Precision(wire.Precision) {
	case F64:
		if len(wire.Data) != n*wire.Dim {
			return fmt.Errorf("embstore: load: corrupt snapshot: %d values for %d vectors of dim %d",
				len(wire.Data), n, wire.Dim)
		}
	case F32:
		if len(wire.Data32) != n*wire.Dim {
			return fmt.Errorf("embstore: load: corrupt snapshot: %d f32 values for %d vectors of dim %d",
				len(wire.Data32), n, wire.Dim)
		}
		if len(wire.Norms) != n {
			return fmt.Errorf("embstore: load: corrupt snapshot: %d norms for %d vectors", len(wire.Norms), n)
		}
	case SQ8:
		if len(wire.Codes) != n*wire.Dim {
			return fmt.Errorf("embstore: load: corrupt snapshot: %d codes for %d vectors of dim %d",
				len(wire.Codes), n, wire.Dim)
		}
		if len(wire.Scales) != n || len(wire.Offsets) != n || len(wire.Norms) != n {
			return fmt.Errorf("embstore: load: corrupt snapshot: sq8 sidecars %d/%d/%d for %d vectors",
				len(wire.Scales), len(wire.Offsets), len(wire.Norms), n)
		}
	default:
		return fmt.Errorf("embstore: load: unknown snapshot precision %d", wire.Precision)
	}
	return nil
}

// Load reconstructs a store from a snapshot written by Save, at the
// snapshot's native precision.
func Load(r io.Reader, shards int) (*Store, error) {
	s, _, err := LoadSnapshot(r, shards)
	return s, err
}

// LoadSnapshot reconstructs a store at the snapshot's native precision
// and returns the WAL watermark it was stamped with (0 for pre-WAL
// snapshots): replay resumes from the record after the watermark.
func LoadSnapshot(r io.Reader, shards int) (*Store, uint64, error) {
	return loadSnapshot(r, shards, nil)
}

// LoadSnapshotAt is LoadSnapshot at an explicit target precision,
// regardless of the precision the snapshot was written in. Same-
// precision loads are lossless (bit-identical slabs); cross-precision
// loads dequantize each row and re-encode it on the way in — the
// upconvert-on-boot path that lets an old f64 snapshot seed an sq8
// daemon (and vice versa).
func LoadSnapshotAt(r io.Reader, shards int, prec Precision) (*Store, uint64, error) {
	return loadSnapshot(r, shards, &prec)
}

func loadSnapshot(r io.Reader, shards int, prec *Precision) (*Store, uint64, error) {
	var wire storeWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, 0, fmt.Errorf("embstore: load: %v", err)
	}
	if err := wire.validate(); err != nil {
		return nil, 0, err
	}
	native := Precision(wire.Precision)
	target := native
	if prec != nil {
		target = *prec
	}
	s, err := NewPrecision(wire.Dim, shards, target)
	if err != nil {
		return nil, 0, err
	}
	dim := wire.Dim
	if target == native {
		// Lossless path: move the wire representation straight into the
		// slabs, preserving codes and sidecars bit for bit.
		for i, id := range wire.IDs {
			sh := s.shardFor(id)
			sh.mu.Lock()
			slot := sh.ensureSlot(s, id)
			switch native {
			case F64:
				row := wire.Data[i*dim : (i+1)*dim]
				copy(sh.vecs[slot*dim:(slot+1)*dim], row)
				sh.norms[slot] = vecmath.Norm(row)
			case F32:
				copy(sh.vecs32[slot*dim:(slot+1)*dim], wire.Data32[i*dim:(i+1)*dim])
				sh.norms[slot] = wire.Norms[i]
			case SQ8:
				row := wire.Codes[i*dim : (i+1)*dim]
				copy(sh.codes[slot*dim:(slot+1)*dim], row)
				var codeSum int32
				for _, c := range row {
					codeSum += int32(c)
				}
				sh.meta[slot] = sq8Meta{scale: wire.Scales[i], offset: wire.Offsets[i], norm: wire.Norms[i], codeSum: codeSum}
			}
			sh.mu.Unlock()
		}
		return s, wire.Watermark, nil
	}
	// Conversion path: dequantize each wire row to full precision, then
	// upsert (which narrows to the target layout). The original norm
	// rides along where the wire carries one, so a narrowed store still
	// scores with the exact denominator.
	buf := make([]float64, dim)
	for i, id := range wire.IDs {
		var norm float64
		switch native {
		case F64:
			copy(buf, wire.Data[i*dim:(i+1)*dim])
			norm = vecmath.Norm(buf)
		case F32:
			vecmath.F32To64(buf, wire.Data32[i*dim:(i+1)*dim])
			norm = wire.Norms[i]
		case SQ8:
			vecmath.DecodeSQ8(buf, wire.Codes[i*dim:(i+1)*dim], wire.Scales[i], wire.Offsets[i])
			norm = wire.Norms[i]
		}
		if err := s.upsertNorm(id, buf, norm); err != nil {
			return nil, 0, err
		}
	}
	return s, wire.Watermark, nil
}
