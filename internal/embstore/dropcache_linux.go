//go:build linux && (amd64 || arm64)

package embstore

import (
	"os"
	"syscall"
)

// DropFileCache asks the kernel to evict path's clean pages from the
// page cache (posix_fadvise POSIX_FADV_DONTNEED), so the next open
// faults its reads in from disk. No privilege needed — unlike
// /proc/sys/vm/drop_caches it touches only this file. Benchmarks use
// it to label mmap numbers as warm- vs cold-page-cache; dirty pages
// are flushed first because DONTNEED silently skips them.
func DropFileCache(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return err
	}
	const posixFadvDontneed = 4
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, posixFadvDontneed, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
