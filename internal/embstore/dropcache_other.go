//go:build !(linux && (amd64 || arm64))

package embstore

import "errors"

// DropFileCache is unavailable without fadvise; cold-cache benchmarks
// skip on this platform.
func DropFileCache(path string) error {
	return errors.ErrUnsupported
}
