// Package skipgram implements skip-gram with negative sampling (SGNS,
// Mikolov et al.) over node sequences. It is the training substrate of the
// NODE2VEC and CTDNE baselines: nodes co-occurring within a window of the
// same random walk are pushed together in embedding space.
//
// Training is hogwild-parallel: workers update the shared embedding
// matrices without locks, the standard (and empirically benign) practice
// for sparse SGNS updates.
package skipgram

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"ehna/internal/graph"
	"ehna/internal/sample"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
)

// Config parameterizes SGNS training.
type Config struct {
	Dim       int     // embedding dimensionality (paper: 128)
	Window    int     // max context offset within a walk (paper: 10 for node2vec)
	Negatives int     // negative samples per positive pair (paper: 5)
	LR        float64 // initial learning rate, decayed linearly to LR/100
	Epochs    int     // passes over the sequence set
	Workers   int     // parallel workers; 0 means GOMAXPROCS
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("skipgram: Dim %d < 1", c.Dim)
	}
	if c.Window < 1 {
		return fmt.Errorf("skipgram: Window %d < 1", c.Window)
	}
	if c.Negatives < 1 {
		return fmt.Errorf("skipgram: Negatives %d < 1", c.Negatives)
	}
	if c.LR <= 0 {
		return fmt.Errorf("skipgram: LR %g must be positive", c.LR)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("skipgram: Epochs %d < 1", c.Epochs)
	}
	return nil
}

// DefaultConfig returns the baselines' settings from Section V-C.
func DefaultConfig() Config {
	return Config{Dim: 128, Window: 10, Negatives: 5, LR: 0.025, Epochs: 1}
}

// Model holds the two SGNS matrices. Emb ("input" vectors) is the final
// node representation; Ctx holds the context ("output") vectors.
type Model struct {
	Emb, Ctx *tensor.Matrix
}

// NewModel initializes SGNS matrices for n nodes: Emb uniform in
// [−0.5/d, 0.5/d) (word2vec convention), Ctx zero.
func NewModel(n, dim int, rng *rand.Rand) *Model {
	return &Model{
		Emb: tensor.Uniform(n, dim, -0.5/float64(dim), 0.5/float64(dim), rng),
		Ctx: tensor.New(n, dim),
	}
}

// Train runs SGNS over the sequences, sampling negatives from noise
// (typically degree^0.75). It returns the trained model.
func Train(seqs [][]graph.NodeID, numNodes int, noise *sample.Alias, cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("skipgram: no sequences to train on")
	}
	if noise == nil {
		return nil, fmt.Errorf("skipgram: nil noise distribution")
	}
	m := NewModel(numNodes, cfg.Dim, rand.New(rand.NewSource(seed)))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	totalSteps := cfg.Epochs * len(seqs)
	var done int64 // approximate progress for LR decay; benign races
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var wg sync.WaitGroup
		chunk := (len(seqs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(seqs) {
				hi = len(seqs)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int, wseed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(wseed))
				grad := make([]float64, cfg.Dim)
				for _, seq := range seqs[lo:hi] {
					progress := float64(done) / float64(totalSteps)
					lr := cfg.LR * (1 - progress)
					if lr < cfg.LR/100 {
						lr = cfg.LR / 100
					}
					m.trainSequence(seq, noise, cfg, lr, rng, grad)
					done++
				}
			}(lo, hi, seed+int64(epoch*workers+w)+1)
		}
		wg.Wait()
	}
	return m, nil
}

// trainSequence applies one SGNS pass over a single walk.
func (m *Model) trainSequence(seq []graph.NodeID, noise *sample.Alias, cfg Config, lr float64, rng *rand.Rand, grad []float64) {
	for i, center := range seq {
		// Dynamic window, as in word2vec: uniform in [1, Window].
		win := 1 + rng.Intn(cfg.Window)
		lo := i - win
		if lo < 0 {
			lo = 0
		}
		hi := i + win
		if hi >= len(seq) {
			hi = len(seq) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i || seq[j] == center {
				continue
			}
			m.pair(int(center), int(seq[j]), noise, cfg.Negatives, lr, rng, grad)
		}
	}
}

// pair applies the SGNS update for one (center, context) pair through
// the fused vecmath.SgnsUpdate kernel (dot, sigmoid and both axpys in
// one pass). grad is caller-owned per-worker scratch, so the whole
// pair loop is allocation-free (asserted in skipgram_test.go).
func (m *Model) pair(center, context int, noise *sample.Alias, negatives int, lr float64, rng *rand.Rand, grad []float64) {
	v := m.Emb.Row(center)
	vecmath.Zero(grad)
	// Positive example: label 1.
	vecmath.SgnsUpdate(v, m.Ctx.Row(context), grad, 1, lr)
	// Negatives: label 0.
	for k := 0; k < negatives; k++ {
		neg := noise.Draw(rng)
		if neg == context {
			continue
		}
		vecmath.SgnsUpdate(v, m.Ctx.Row(neg), grad, 0, lr)
	}
	vecmath.Add(v, grad)
}

// DegreeNoise builds the deg^0.75 noise distribution over g's nodes,
// matching the paper's negative-sampling setup.
func DegreeNoise(g *graph.Temporal) (*sample.Alias, error) {
	n := g.NumNodes()
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		d := float64(g.Degree(graph.NodeID(i)))
		if d > 0 {
			w[i] = math.Pow(d, 0.75)
		}
	}
	return sample.NewAlias(w)
}
