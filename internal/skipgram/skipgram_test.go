package skipgram

import (
	"math/rand"
	"testing"

	"ehna/internal/graph"
	"ehna/internal/sample"
	"ehna/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dim: 0, Window: 1, Negatives: 1, LR: 0.1, Epochs: 1},
		{Dim: 8, Window: 0, Negatives: 1, LR: 0.1, Epochs: 1},
		{Dim: 8, Window: 1, Negatives: 0, LR: 0.1, Epochs: 1},
		{Dim: 8, Window: 1, Negatives: 1, LR: 0, Epochs: 1},
		{Dim: 8, Window: 1, Negatives: 1, LR: 0.1, Epochs: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainInputValidation(t *testing.T) {
	noise := sample.MustAlias([]float64{1, 1})
	cfg := Config{Dim: 4, Window: 2, Negatives: 2, LR: 0.1, Epochs: 1}
	if _, err := Train(nil, 2, noise, cfg, 1); err == nil {
		t.Fatal("empty sequences accepted")
	}
	if _, err := Train([][]graph.NodeID{{0, 1}}, 2, nil, cfg, 1); err == nil {
		t.Fatal("nil noise accepted")
	}
	if _, err := Train([][]graph.NodeID{{0, 1}}, 2, noise, Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNewModelInit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel(5, 8, rng)
	if m.Emb.Rows != 5 || m.Emb.Cols != 8 || m.Ctx.Rows != 5 {
		t.Fatal("model shapes")
	}
	if m.Ctx.Frobenius() != 0 {
		t.Fatal("context matrix must start at zero")
	}
	for _, v := range m.Emb.Data {
		if v < -0.5/8 || v >= 0.5/8 {
			t.Fatalf("init value %g outside word2vec range", v)
		}
	}
}

// twoCliqueSequences emits walks confined to two disjoint cliques
// {0,1,2} and {3,4,5}; SGNS must place same-clique nodes closer.
func twoCliqueSequences(rng *rand.Rand, n int) [][]graph.NodeID {
	var seqs [][]graph.NodeID
	groups := [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}}
	for i := 0; i < n; i++ {
		grp := groups[i%2]
		seq := make([]graph.NodeID, 12)
		for j := range seq {
			seq[j] = grp[rng.Intn(len(grp))]
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func TestTrainSeparatesCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seqs := twoCliqueSequences(rng, 400)
	noise := sample.MustAlias([]float64{1, 1, 1, 1, 1, 1})
	cfg := Config{Dim: 16, Window: 4, Negatives: 5, LR: 0.08, Epochs: 15, Workers: 1}
	m, err := Train(seqs, 6, noise, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// SGNS converges to a shifted-PMI equilibrium: the discriminative
	// signal lives in the emb·ctx scores (used for prediction), which must
	// be far higher for co-occurring (intra-clique) pairs than for
	// never-co-occurring (inter-clique) pairs.
	score := func(a, b int) float64 {
		return tensor.DotVec(m.Emb.Row(a), m.Ctx.Row(b))
	}
	intra := (score(0, 1) + score(1, 2) + score(3, 4) + score(4, 5)) / 4
	inter := (score(0, 3) + score(1, 4) + score(2, 5)) / 3
	if intra <= inter+2 {
		t.Fatalf("communities not separated in score space: intra %g inter %g", intra, inter)
	}
	// The input embeddings themselves must also order correctly, if less
	// dramatically at this tiny vocabulary size.
	cos := func(a, b int) float64 {
		va, vb := m.Emb.Row(a), m.Emb.Row(b)
		return tensor.DotVec(va, vb) / (tensor.L2NormVec(va)*tensor.L2NormVec(vb) + 1e-12)
	}
	intraCos := (cos(0, 1) + cos(1, 2) + cos(3, 4) + cos(4, 5)) / 4
	interCos := (cos(0, 3) + cos(1, 4) + cos(2, 5)) / 3
	if intraCos <= interCos {
		t.Fatalf("embedding cosine ordering inverted: intra %g inter %g", intraCos, interCos)
	}
}

func TestTrainDeterministicSingleWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seqs := twoCliqueSequences(rng, 50)
	noise := sample.MustAlias([]float64{1, 1, 1, 1, 1, 1})
	cfg := Config{Dim: 8, Window: 3, Negatives: 3, LR: 0.05, Epochs: 1, Workers: 1}
	m1, err := Train(seqs, 6, noise, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(seqs, 6, noise, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(m1.Emb, m2.Emb, 0) {
		t.Fatal("single-worker training must be deterministic for a fixed seed")
	}
}

func TestDegreeNoise(t *testing.T) {
	g := graph.NewTemporal(4)
	_ = g.AddEdge(0, 1, 1, 1)
	_ = g.AddEdge(0, 2, 1, 2)
	_ = g.AddEdge(0, 3, 1, 3)
	g.Build()
	noise, err := DegreeNoise(g)
	if err != nil {
		t.Fatal(err)
	}
	if noise.Len() != 4 {
		t.Fatal("noise support size")
	}
	// Node 0 (degree 3) must be drawn more often than the leaves.
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 4)
	for i := 0; i < 20000; i++ {
		counts[noise.Draw(rng)]++
	}
	if counts[0] <= counts[1] {
		t.Fatalf("hub not preferred: %v", counts)
	}
	empty := graph.NewTemporal(2)
	empty.Build()
	if _, err := DegreeNoise(empty); err == nil {
		t.Fatal("edgeless graph accepted")
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seqs := twoCliqueSequences(rng, 200)
	noise := sample.MustAlias([]float64{1, 1, 1, 1, 1, 1})
	cfg := Config{Dim: 64, Window: 5, Negatives: 5, LR: 0.025, Epochs: 1, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(seqs, 6, noise, cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPairLoopZeroAlloc asserts the SGNS inner loop — the hogwild hot
// path every worker spins on — performs no allocations per sequence
// once the per-worker grad scratch exists.
func TestPairLoopZeroAlloc(t *testing.T) {
	cfg := Config{Dim: 32, Window: 4, Negatives: 5, LR: 0.025, Epochs: 1}
	rng := rand.New(rand.NewSource(1))
	m := NewModel(50, cfg.Dim, rng)
	noise, err := sample.NewAlias(make50Weights())
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]graph.NodeID, 20)
	for i := range seq {
		seq[i] = graph.NodeID(rng.Intn(50))
	}
	grad := make([]float64, cfg.Dim)
	allocs := testing.AllocsPerRun(50, func() {
		m.trainSequence(seq, noise, cfg, cfg.LR, rng, grad)
	})
	if allocs != 0 {
		t.Fatalf("SGNS pair loop allocated %v times per sequence", allocs)
	}
}

func make50Weights() []float64 {
	w := make([]float64, 50)
	for i := range w {
		w[i] = float64(i%7) + 1
	}
	return w
}
