package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ehna/internal/obs"
	"ehna/internal/wal"
)

// Replication wire contract (leader side, served by cmd/ehnad):
//
//	GET /v1/repl/stream?after=<seq>
//	  200: body is a sequence of CRC-framed WAL records (the on-disk
//	       segment format) with after < seq ≤ X-Ehnad-Last-Seq, in
//	       order. Only durable records are shipped — the leader never
//	       streams what it could itself lose in a crash.
//	  410: the leader truncated past `after`; body carries the leader's
//	       snapshot watermark. The follower must re-bootstrap from
//	       /v1/export instead of streaming.
//	GET  /v1/repl/status   — {role, last_seq, durable_seq, applied, ...}
//	POST /v1/admin/promote — leave follower mode; returns the applied
//	       watermark the new leader starts serving writes from.

// LastSeqHeader carries the durable watermark the stream response was
// bounded by, so a follower can report lag even on an empty poll.
// Exported because the daemon's stream handler sets it.
const LastSeqHeader = "X-Ehnad-Last-Seq"

var (
	replRecords = obs.Default().Counter("ehnad_repl_records_total",
		"WAL records received and applied from the replication stream.")
	replRounds = obs.Default().Counter("ehnad_repl_rounds_total",
		"Replication stream requests issued (reconnects and empty polls included).")
	replErrors = obs.Default().Counter("ehnad_repl_errors_total",
		"Replication rounds that ended in a transport, protocol or apply error.")
	replApplyHist = obs.Default().Histogram("ehnad_repl_apply_seconds",
		"Latency of applying one replicated record batch (append + index).")
)

// ReplClient tails a leader's WAL over HTTP and applies each batch
// through the caller's apply function — on the daemon, the same
// store+index path boot replay uses, under the same applier lock, with
// the leader's sequence numbers preserved. Run keeps the follower
// converging until its context is canceled (promotion, shutdown).
type ReplClient struct {
	// Leader is the leader daemon's base URL.
	Leader string
	// Apply applies one contiguous batch of replicated records. An
	// error pauses the stream and retries the same position — records
	// are re-fetched, never skipped.
	Apply func(recs []wal.Record) error
	// Applied reports the highest sequence number locally applied; each
	// stream round resumes after it.
	Applied func() uint64
	// OnGap is called when the leader answers 410 (it truncated past
	// our watermark, so streaming can never catch up) with the leader's
	// snapshot watermark. Absent or failing, the client backs off and
	// retries — re-bootstrapping is the daemon's call, not ours.
	OnGap func(leaderWatermark uint64) error
	// Client is the HTTP client (default: a dedicated one with no
	// overall timeout; the server long-polls).
	Client *http.Client
	// PollInterval is the pause after an empty round (default 200ms).
	PollInterval time.Duration
	// BatchMax bounds records per Apply call (default 256), so one huge
	// catch-up stream doesn't hold the applier lock for its entirety.
	BatchMax int
	// Logf, when set, receives replication lifecycle messages.
	Logf func(format string, args ...any)

	leaderSeq atomic.Uint64
}

// LeaderSeq returns the leader's durable watermark as of the last
// stream round — with Applied(), the replication lag.
func (rc *ReplClient) LeaderSeq() uint64 { return rc.leaderSeq.Load() }

func (rc *ReplClient) logf(format string, args ...any) {
	if rc.Logf != nil {
		rc.Logf(format, args...)
	}
}

// Run tails the leader until ctx is canceled. Transport errors,
// protocol divergence and apply failures all back off and resume from
// the applied watermark; the loop never skips or reorders records.
func (rc *ReplClient) Run(ctx context.Context) {
	client := rc.Client
	if client == nil {
		client = &http.Client{}
	}
	poll := rc.PollInterval
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for ctx.Err() == nil {
		n, err := rc.round(ctx, client)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			replErrors.Inc()
			rc.logf("cluster: replication from %s: %v", rc.Leader, err)
			if !sleepCtx(ctx, poll) {
				return
			}
			continue
		}
		if n == 0 {
			// Caught up; the server already long-polled before answering
			// empty, so this pause only bounds the reconnect rate.
			if !sleepCtx(ctx, poll) {
				return
			}
		}
	}
}

// round performs one stream request and applies everything it returns,
// reporting how many records were applied.
func (rc *ReplClient) round(ctx context.Context, client *http.Client) (int, error) {
	replRounds.Inc()
	after := rc.Applied()
	u := fmt.Sprintf("%s/v1/repl/stream?after=%d", rc.Leader, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if h := resp.Header.Get(LastSeqHeader); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			rc.leaderSeq.Store(v)
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		var body struct {
			Watermark uint64 `json:"watermark"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		if rc.OnGap != nil {
			if err := rc.OnGap(body.Watermark); err != nil {
				return 0, fmt.Errorf("leader truncated past seq %d (watermark %d): %w", after, body.Watermark, err)
			}
			return 0, nil
		}
		return 0, fmt.Errorf("leader truncated past seq %d (watermark %d): re-bootstrap required", after, body.Watermark)
	default:
		return 0, fmt.Errorf("stream status %s", resp.Status)
	}

	batchMax := rc.BatchMax
	if batchMax <= 0 {
		batchMax = 256
	}
	dec := wal.NewDecoder(resp.Body)
	var (
		batch   []wal.Record
		applied int
		next    = after + 1
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		start := time.Now()
		if err := rc.Apply(batch); err != nil {
			return fmt.Errorf("apply batch at seq %d: %w", batch[0].Seq, err)
		}
		replApplyHist.ObserveSince(start)
		replRecords.Add(uint64(len(batch)))
		applied += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		rec, err := dec.Decode()
		if err == io.EOF {
			return applied, flush()
		}
		if err != nil {
			// A torn frame is a dropped connection mid-record: apply what
			// arrived whole and resume from the new watermark.
			if ferr := flush(); ferr != nil {
				return applied, ferr
			}
			return applied, fmt.Errorf("stream decode after seq %d: %w", next-1, err)
		}
		if rec.Seq != next {
			// Apply the contiguous prefix, then resume from it — the
			// discontinuity suffix is re-fetched, never guessed at.
			if ferr := flush(); ferr != nil {
				return applied, ferr
			}
			return applied, fmt.Errorf("stream discontinuity: got seq %d, want %d", rec.Seq, next)
		}
		next++
		batch = append(batch, rec)
		if len(batch) >= batchMax {
			if err := flush(); err != nil {
				return applied, err
			}
		}
	}
}

// sleepCtx sleeps d or until ctx is done, reporting whether to keep
// running.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ReplStatus is the /v1/repl/status body: the role a daemon is serving
// in and its replication watermarks.
type ReplStatus struct {
	Role       string `json:"role"` // "leader" or "follower"
	LastSeq    uint64 `json:"last_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	// Applied is the watermark through which the local store+index
	// reflect the log. Under the daemon's applier-lock invariant it
	// equals LastSeq whenever the lock is free.
	Applied uint64 `json:"applied"`
	// Leader is the upstream URL when Role is "follower".
	Leader string `json:"leader,omitempty"`
}

// FetchReplStatus asks one daemon for its role and watermarks.
func FetchReplStatus(ctx context.Context, client *http.Client, base string) (ReplStatus, error) {
	var st ReplStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/repl/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("repl status from %s: %s", base, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("repl status from %s: %w", base, err)
	}
	return st, nil
}

// Promote asks the daemon at base to leave follower mode and own its
// shard's write path, returning the applied watermark it promotes at —
// every acked write with seq ≤ that watermark survived the failover.
func Promote(ctx context.Context, client *http.Client, base string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/admin/promote", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("promote %s: %s: %s", base, resp.Status, b)
	}
	var body struct {
		Applied uint64 `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	return body.Applied, nil
}
