package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ehna/internal/ann"
	"ehna/internal/graph"
)

// stubShard is a minimal in-memory daemon: enough of cmd/ehnad's API
// surface (/v1/neighbors batch, /v1/vector, /v1/repl/status,
// /v1/admin/promote, writes) for router tests, with dot-product
// scoring so merged orderings are checkable by hand.
type stubShard struct {
	mu            sync.Mutex
	vectors       map[graph.NodeID][]float64
	upserts       []graph.NodeID // ids received via /v1/upsert, in order
	deletes       []graph.NodeID
	role          string
	applied       uint64
	promoted      atomic.Bool
	failNeighbors atomic.Bool // force 500s on search
	seq           uint64

	srv *httptest.Server
}

func newStubShard(role string, applied uint64) *stubShard {
	s := &stubShard{vectors: make(map[graph.NodeID][]float64), role: role, applied: applied}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/neighbors", s.neighbors)
	mux.HandleFunc("/v1/vector", s.vector)
	mux.HandleFunc("/v1/repl/status", s.status)
	mux.HandleFunc("/v1/admin/promote", s.promote)
	mux.HandleFunc("/v1/upsert", s.upsert)
	mux.HandleFunc("/v1/delete", s.del)
	s.srv = httptest.NewServer(mux)
	return s
}

func (s *stubShard) url() string { return s.srv.URL }

func (s *stubShard) add(id graph.NodeID, vec []float64) {
	s.mu.Lock()
	s.vectors[id] = vec
	s.mu.Unlock()
}

func (s *stubShard) neighbors(w http.ResponseWriter, r *http.Request) {
	if s.failNeighbors.Load() {
		http.Error(w, "injected failure", http.StatusInternalServerError)
		return
	}
	var req struct {
		Queries []struct {
			Vector []float64 `json:"vector"`
			K      int       `json:"k"`
		} `json:"queries"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	batches := make([][]ann.Result, len(req.Queries))
	for qi, q := range req.Queries {
		var res []ann.Result
		for id, v := range s.vectors {
			var dot float64
			for i := range v {
				dot += v[i] * q.Vector[i]
			}
			res = append(res, ann.Result{ID: id, Score: dot})
		}
		sort.Slice(res, func(i, j int) bool {
			if res[i].Score != res[j].Score {
				return res[i].Score > res[j].Score
			}
			return res[i].ID < res[j].ID
		})
		if len(res) > q.K {
			res = res[:q.K]
		}
		batches[qi] = res
	}
	json.NewEncoder(w).Encode(map[string]any{"batches": batches})
}

func (s *stubShard) vector(w http.ResponseWriter, r *http.Request) {
	var id graph.NodeID
	fmt.Sscanf(r.URL.Query().Get("id"), "%d", &id)
	s.mu.Lock()
	v, ok := s.vectors[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"id": id, "vector": v})
}

func (s *stubShard) status(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := ReplStatus{Role: s.role, LastSeq: s.applied, DurableSeq: s.applied, Applied: s.applied}
	s.mu.Unlock()
	json.NewEncoder(w).Encode(st)
}

func (s *stubShard) promote(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.role = "leader"
	applied := s.applied
	s.mu.Unlock()
	s.promoted.Store(true)
	json.NewEncoder(w).Encode(map[string]any{"role": "leader", "applied": applied})
}

func (s *stubShard) upsert(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != "leader" {
		http.Error(w, "follower: read-only replica", http.StatusServiceUnavailable)
		return
	}
	var req struct {
		Updates []struct {
			ID     *graph.NodeID `json:"id"`
			Vector []float64     `json:"vector"`
		} `json:"updates"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, u := range req.Updates {
		s.vectors[*u.ID] = u.Vector
		s.upserts = append(s.upserts, *u.ID)
		s.seq++
	}
	json.NewEncoder(w).Encode(map[string]any{"upserted": len(req.Updates), "seq": s.seq})
}

func (s *stubShard) del(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != "leader" {
		http.Error(w, "follower: read-only replica", http.StatusServiceUnavailable)
		return
	}
	var req struct {
		IDs []graph.NodeID `json:"ids"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, id := range req.IDs {
		delete(s.vectors, id)
		s.deletes = append(s.deletes, id)
		s.seq++
	}
	json.NewEncoder(w).Encode(map[string]any{"deleted": len(req.IDs), "seq": s.seq})
}

// newTestRouter builds a router over the given stubs (one endpoint per
// shard unless extra endpoints are appended by the caller).
func newTestRouter(t *testing.T, shards map[string][]*stubShard) (*Router, *httptest.Server) {
	t.Helper()
	var names []string
	for n := range shards {
		names = append(names, n)
	}
	sort.Strings(names)
	var sp []ShardSpec
	for _, n := range names {
		var eps []string
		for _, s := range shards[n] {
			eps = append(eps, s.url())
		}
		sp = append(sp, ShardSpec{Name: n, Endpoints: eps})
	}
	m, err := NewShardMap(1, sp)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{
		Map:             m,
		DefaultDeadline: 2 * time.Second,
		HealthInterval:  50 * time.Millisecond,
		FailAfter:       2,
		AutoFailover:    true,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return rt, srv
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

// basis returns a one-hot-ish vector with value v at position i.
func basis(dim, i int, v float64) []float64 {
	vec := make([]float64, dim)
	vec[i] = v
	return vec
}

// TestRouterScatterGatherMerge seeds disjoint vectors on two shards
// and checks the router returns the global top-k in score order.
func TestRouterScatterGatherMerge(t *testing.T) {
	a, b := newStubShard("leader", 0), newStubShard("leader", 0)
	defer a.srv.Close()
	defer b.srv.Close()
	const dim = 4
	// Scores against query basis(0): a holds 9 and 7; b holds 8 and 1.
	a.add(1, basis(dim, 0, 9))
	a.add(2, basis(dim, 0, 7))
	b.add(3, basis(dim, 0, 8))
	b.add(4, basis(dim, 0, 1))
	_, srv := newTestRouter(t, map[string][]*stubShard{"a": {a}, "b": {b}})

	var out struct {
		Results []ann.Result `json:"results"`
	}
	code, body := postJSON(t, srv.URL+"/v1/neighbors", map[string]any{"vector": basis(dim, 0, 1), "k": 3}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	want := []graph.NodeID{1, 3, 2} // scores 9, 8, 7
	if len(out.Results) != len(want) {
		t.Fatalf("got %d results, want %d: %s", len(out.Results), len(want), body)
	}
	for i, id := range want {
		if out.Results[i].ID != id {
			t.Fatalf("result %d = id %d, want %d (%s)", i, out.Results[i].ID, id, body)
		}
	}
}

// TestRouterPartialDegradation kills one shard's search path and
// expects degraded partial results, then kills both and expects 503.
func TestRouterPartialDegradation(t *testing.T) {
	a, b := newStubShard("leader", 0), newStubShard("leader", 0)
	defer a.srv.Close()
	defer b.srv.Close()
	const dim = 4
	a.add(1, basis(dim, 0, 9))
	b.add(3, basis(dim, 0, 8))
	_, srv := newTestRouter(t, map[string][]*stubShard{"a": {a}, "b": {b}})

	b.failNeighbors.Store(true)
	var out struct {
		Results        []ann.Result `json:"results"`
		Degraded       bool         `json:"degraded"`
		ShardsAnswered int          `json:"shards_answered"`
		ShardsTotal    int          `json:"shards_total"`
	}
	code, body := postJSON(t, srv.URL+"/v1/neighbors", map[string]any{"vector": basis(dim, 0, 1), "k": 2}, &out)
	if code != http.StatusOK {
		t.Fatalf("partial coverage should still answer 200, got %d: %s", code, body)
	}
	if !out.Degraded || out.ShardsAnswered != 1 || out.ShardsTotal != 2 {
		t.Fatalf("want degraded with 1/2 shards, got %s", body)
	}
	if len(out.Results) != 1 || out.Results[0].ID != 1 {
		t.Fatalf("partial results should come from the live shard: %s", body)
	}

	a.failNeighbors.Store(true)
	code, body = postJSON(t, srv.URL+"/v1/neighbors", map[string]any{"vector": basis(dim, 0, 1), "k": 2}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all shards down should be 503, got %d: %s", code, body)
	}
}

// TestRouterIDQueryResolvesAcrossShards queries by id: the router must
// fetch the vector from the owning shard, scatter it everywhere, and
// trim the query node from its own results.
func TestRouterIDQueryResolvesAcrossShards(t *testing.T) {
	a, b := newStubShard("leader", 0), newStubShard("leader", 0)
	defer a.srv.Close()
	defer b.srv.Close()
	stubs := map[string][]*stubShard{"a": {a}, "b": {b}}
	rt, srv := newTestRouter(t, stubs)

	const dim = 4
	// Place ids where the ring says they live, so /v1/vector resolution
	// targets the right stub.
	byShard := map[int]*stubShard{0: a, 1: b}
	ids := []graph.NodeID{10, 11, 12, 13, 14, 15}
	for i, id := range ids {
		byShard[rt.cfg.Map.Owner(id)].add(id, basis(dim, 0, float64(10-i))) // descending scores
	}

	var out struct {
		Results []ann.Result `json:"results"`
	}
	code, body := postJSON(t, srv.URL+"/v1/neighbors", map[string]any{"id": 10, "k": 3}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3: %s", len(out.Results), body)
	}
	for _, r := range out.Results {
		if r.ID == 10 {
			t.Fatalf("query node leaked into its own results: %s", body)
		}
	}
	// id 10 has the top score (10); next best are 11, 12, 13.
	want := []graph.NodeID{11, 12, 13}
	for i, id := range want {
		if out.Results[i].ID != id {
			t.Fatalf("result %d = id %d, want %d (%s)", i, out.Results[i].ID, id, body)
		}
	}

	// An id nobody holds is the client's error: 400, as on the daemon.
	code, body = postJSON(t, srv.URL+"/v1/neighbors", map[string]any{"id": 9999, "k": 3}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown id should be 400, got %d: %s", code, body)
	}
}

// TestRouterWriteGroupingFollowsRing checks every upserted id lands on
// (exactly) its ring owner, and deletes follow the same placement.
func TestRouterWriteGroupingFollowsRing(t *testing.T) {
	a, b := newStubShard("leader", 0), newStubShard("leader", 0)
	defer a.srv.Close()
	defer b.srv.Close()
	rt, srv := newTestRouter(t, map[string][]*stubShard{"a": {a}, "b": {b}})

	const dim = 4
	var updates []map[string]any
	for id := 0; id < 40; id++ {
		updates = append(updates, map[string]any{"id": id, "vector": basis(dim, id%dim, 1)})
	}
	var out struct {
		Upserted int `json:"upserted"`
	}
	code, body := postJSON(t, srv.URL+"/v1/upsert", map[string]any{"updates": updates}, &out)
	if code != http.StatusOK || out.Upserted != 40 {
		t.Fatalf("upsert: status %d, %s", code, body)
	}
	stubs := []*stubShard{a, b}
	for id := 0; id < 40; id++ {
		si := rt.cfg.Map.Owner(graph.NodeID(id))
		for i, s := range stubs {
			s.mu.Lock()
			_, has := s.vectors[graph.NodeID(id)]
			s.mu.Unlock()
			if has != (i == si) {
				t.Fatalf("id %d on stub %d: has=%v, owner=%d", id, i, has, si)
			}
		}
	}

	var dout struct {
		Deleted int `json:"deleted"`
	}
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	code, body = postJSON(t, srv.URL+"/v1/delete", map[string]any{"ids": ids}, &dout)
	if code != http.StatusOK || dout.Deleted != len(ids) {
		t.Fatalf("delete: status %d, %s", code, body)
	}
	for _, id := range ids {
		for _, s := range stubs {
			s.mu.Lock()
			_, has := s.vectors[graph.NodeID(id)]
			s.mu.Unlock()
			if has {
				t.Fatalf("id %d survived delete", id)
			}
		}
	}
}

// TestRouterDeadlineValidation mirrors the daemon's strict budget
// contract: malformed or non-positive overrides are a 400.
func TestRouterDeadlineValidation(t *testing.T) {
	a := newStubShard("leader", 0)
	defer a.srv.Close()
	_, srv := newTestRouter(t, map[string][]*stubShard{"a": {a}})

	for _, hdr := range []string{"abc", "-5", "0"} {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/neighbors",
			bytes.NewReader([]byte(`{"vector":[1,0,0,0],"k":1}`)))
		req.Header.Set(deadlineHeader, hdr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("header %q: status %d, want 400", hdr, resp.StatusCode)
		}
	}
	code, body := postJSON(t, srv.URL+"/v1/neighbors", map[string]any{"vector": []float64{1, 0, 0, 0}, "deadline_ms": -10}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("negative deadline_ms: status %d, want 400: %s", code, body)
	}
}

// TestRouterFailoverPromotesMostCaughtUp kills a shard leader and
// checks the health loop promotes the follower with the highest
// applied watermark, after which writes flow again.
func TestRouterFailoverPromotesMostCaughtUp(t *testing.T) {
	leader := newStubShard("leader", 20)
	lagging := newStubShard("follower", 15)
	caughtUp := newStubShard("follower", 20)
	defer lagging.srv.Close()
	defer caughtUp.srv.Close()
	rt, srv := newTestRouter(t, map[string][]*stubShard{"a": {leader, lagging, caughtUp}})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Run(ctx)

	// Let the first probe round see the healthy topology, then kill the
	// leader outright (connection refused, not a clean HTTP error).
	time.Sleep(150 * time.Millisecond)
	leader.srv.Close()

	deadline := time.After(5 * time.Second)
	for !caughtUp.promoted.Load() {
		if lagging.promoted.Load() {
			t.Fatal("router promoted the lagging follower over the caught-up one")
		}
		select {
		case <-deadline:
			t.Fatal("no promotion within 5s of leader death")
		case <-time.After(20 * time.Millisecond):
		}
	}

	// Writes must land on the new leader.
	var out struct {
		Upserted int `json:"upserted"`
	}
	id := 1
	code, body := postJSON(t, srv.URL+"/v1/upsert", map[string]any{"id": id, "vector": basis(4, 0, 1)}, &out)
	if code != http.StatusOK || out.Upserted != 1 {
		t.Fatalf("post-failover upsert: status %d, %s", code, body)
	}
	caughtUp.mu.Lock()
	_, has := caughtUp.vectors[graph.NodeID(id)]
	caughtUp.mu.Unlock()
	if !has {
		t.Fatal("post-failover write did not land on the promoted follower")
	}
}

// TestRouterWriteRetryAfterLeaderRefusal exercises the synchronous
// recovery path: the leader pointer aims at a follower (503), and the
// router must re-probe, adopt the actual leader, and retry within the
// same request.
func TestRouterWriteRetryAfterLeaderRefusal(t *testing.T) {
	follower := newStubShard("follower", 5)
	actual := newStubShard("leader", 5)
	defer follower.srv.Close()
	defer actual.srv.Close()
	// follower listed first: the boot-time leader pointer is wrong.
	_, srv := newTestRouter(t, map[string][]*stubShard{"a": {follower, actual}})

	var out struct {
		Upserted int `json:"upserted"`
	}
	code, body := postJSON(t, srv.URL+"/v1/upsert", map[string]any{"id": 1, "vector": basis(4, 0, 1)}, &out)
	if code != http.StatusOK || out.Upserted != 1 {
		t.Fatalf("write through stale leader pointer: status %d, %s", code, body)
	}
	actual.mu.Lock()
	_, has := actual.vectors[1]
	actual.mu.Unlock()
	if !has {
		t.Fatal("write did not reach the actual leader")
	}
}
