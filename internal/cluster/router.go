package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ehna/internal/ann"
	"ehna/internal/graph"
	"ehna/internal/obs"
)

// deadlineHeader mirrors cmd/ehnad's per-request budget override; the
// router both accepts it from clients and forwards the per-shard
// remainder downstream.
const deadlineHeader = "X-Ehnad-Deadline-Ms"

// RouterConfig configures a Router.
type RouterConfig struct {
	// Map is the shard placement. Required.
	Map *ShardMap
	// DefaultDeadline is the request budget when the client sends none
	// (default 2s — a router without a budget cannot derive per-shard
	// deadlines, so unlike the daemon it always runs bounded).
	DefaultDeadline time.Duration
	// MergeMargin is reserved out of the budget for the router's own
	// resolve/merge/encode work; each shard gets budget − margin
	// (default 10% of the budget, clamped to [2ms, 50ms]).
	MergeMargin time.Duration
	// HealthInterval is the endpoint probe period (default 1s).
	HealthInterval time.Duration
	// FailAfter is how many consecutive probe failures mark an endpoint
	// down (default 3).
	FailAfter int
	// AutoFailover lets the health loop promote the most-caught-up
	// healthy endpoint of a shard whose leader is down.
	AutoFailover bool
	// Client is the HTTP client for shard calls (default: dedicated,
	// no overall timeout — per-request contexts bound every call).
	Client *http.Client
	// Logf, when set, receives router lifecycle messages.
	Logf func(format string, args ...any)
}

// endpointState is the router's health view of one daemon.
type endpointState struct {
	url     string
	healthy atomic.Bool
	fails   atomic.Int32
	role    atomic.Value // string: "leader" / "follower" / ""
	applied atomic.Uint64
}

// shardState is one shard's endpoints plus the current leader choice.
type shardState struct {
	name   string
	eps    []*endpointState
	leader atomic.Int32 // index into eps

	probeMu sync.Mutex // serializes write-path re-probes with the health loop
}

// Router scatter-gathers searches across every shard, routes writes to
// the owning shard's leader, and keeps a health/role view of every
// endpoint so it can degrade (partial results) and fail over (promote
// a follower) instead of going dark.
type Router struct {
	cfg    RouterConfig
	client *http.Client
	shards []*shardState

	reg       *obs.Registry
	requests  map[string]*obs.Counter
	errors    map[string]*obs.Counter
	latency   map[string]*obs.Histogram
	degraded  *obs.Counter
	partials  *obs.Counter
	failovers *obs.Counter
	shardErrs []*obs.Counter
}

// NewRouter validates the config and builds the router. Call Run to
// start the health loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Map == nil {
		return nil, errors.New("cluster: router needs a shard map")
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 2 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	rt := &Router{cfg: cfg, client: cfg.Client}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, spec := range cfg.Map.Shards {
		ss := &shardState{name: spec.Name}
		for _, u := range spec.Endpoints {
			ep := &endpointState{url: u}
			ep.role.Store("")
			// Optimistic start: everything is presumed healthy until the
			// probe loop says otherwise, so the first requests after boot
			// are not shed while the first probe round runs.
			ep.healthy.Store(true)
			ss.eps = append(ss.eps, ep)
		}
		rt.shards = append(rt.shards, ss)
	}
	rt.initMetrics()
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

func (rt *Router) initMetrics() {
	rt.reg = obs.NewRegistry()
	rt.requests = make(map[string]*obs.Counter)
	rt.errors = make(map[string]*obs.Counter)
	rt.latency = make(map[string]*obs.Histogram)
	for _, path := range []string{"/v1/neighbors", "/v1/upsert", "/v1/delete"} {
		l := obs.L("path", path)
		rt.requests[path] = rt.reg.Counter("ehnad_router_requests_total", "Requests handled by the router.", l)
		rt.errors[path] = rt.reg.Counter("ehnad_router_errors_total", "Requests the router answered with a 4xx/5xx.", l)
		rt.latency[path] = rt.reg.Histogram("ehnad_router_request_seconds", "Router request latency end to end.", l)
	}
	rt.degraded = rt.reg.Counter("ehnad_router_degraded_total",
		"Search responses served with partial shard coverage.")
	rt.partials = rt.reg.Counter("ehnad_router_shard_misses_total",
		"Per-shard search attempts that failed or timed out.")
	rt.failovers = rt.reg.Counter("ehnad_router_failovers_total",
		"Leader changes the router adopted or initiated.")
	rt.reg.GaugeFunc("ehnad_router_map_version", "Shard map version in service.",
		func() float64 { return float64(rt.cfg.Map.Version) })
	for _, ss := range rt.shards {
		ss := ss
		rt.shardErrs = append(rt.shardErrs, rt.reg.Counter("ehnad_router_shard_errors_total",
			"Failed sub-requests per shard.", obs.L("shard", ss.name)))
		for _, ep := range ss.eps {
			ep := ep
			ls := []obs.Label{obs.L("shard", ss.name), obs.L("endpoint", ep.url)}
			rt.reg.GaugeFunc("ehnad_router_endpoint_healthy",
				"1 when the endpoint is passing health probes.",
				func() float64 {
					if ep.healthy.Load() {
						return 1
					}
					return 0
				}, ls...)
			rt.reg.GaugeFunc("ehnad_router_endpoint_applied_seq",
				"Applied WAL watermark the endpoint last reported.",
				func() float64 { return float64(ep.applied.Load()) }, ls...)
		}
		rt.reg.GaugeFunc("ehnad_router_repl_lag_records",
			"Leader-to-laggiest-follower applied gap for the shard.",
			func() float64 { return float64(ss.lag()) }, obs.L("shard", ss.name))
	}
}

// lag reports the gap between the shard's most and least caught-up
// healthy endpoints — 0 for single-endpoint shards.
func (ss *shardState) lag() uint64 {
	var max, min uint64
	first := true
	for _, ep := range ss.eps {
		if !ep.healthy.Load() {
			continue
		}
		a := ep.applied.Load()
		if first {
			max, min, first = a, a, false
			continue
		}
		if a > max {
			max = a
		}
		if a < min {
			min = a
		}
	}
	if first {
		return 0
	}
	return max - min
}

// Run drives the health/failover loop until ctx is canceled.
func (rt *Router) Run(ctx context.Context) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	rt.probeAll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll(ctx)
		}
	}
}

func (rt *Router) probeAll(ctx context.Context) {
	for _, ss := range rt.shards {
		rt.probeShard(ctx, ss)
	}
}

// probeShard refreshes every endpoint's health/role/applied view and
// re-elects the shard leader if the evidence demands it. Serialized
// per shard so the periodic loop and a write-path recovery probe do
// not race their elections.
func (rt *Router) probeShard(ctx context.Context, ss *shardState) {
	ss.probeMu.Lock()
	defer ss.probeMu.Unlock()
	timeout := rt.cfg.HealthInterval
	if timeout > time.Second {
		timeout = time.Second
	}
	for _, ep := range ss.eps {
		pctx, cancel := context.WithTimeout(ctx, timeout)
		st, err := FetchReplStatus(pctx, rt.client, ep.url)
		cancel()
		if err != nil {
			if n := ep.fails.Add(1); int(n) >= rt.cfg.FailAfter {
				if ep.healthy.Swap(false) {
					rt.logf("cluster: endpoint %s (shard %s) marked down after %d failed probes: %v", ep.url, ss.name, n, err)
				}
			}
			continue
		}
		ep.fails.Store(0)
		ep.healthy.Store(true)
		ep.role.Store(st.Role)
		ep.applied.Store(st.Applied)
	}
	rt.electLeader(ctx, ss)
}

// electLeader keeps the shard's leader pointer on a healthy endpoint
// that is actually serving the leader role, promoting the most
// caught-up healthy follower when allowed and necessary.
func (rt *Router) electLeader(ctx context.Context, ss *shardState) {
	cur := int(ss.leader.Load())
	if ep := ss.eps[cur]; ep.healthy.Load() && ep.role.Load() == "leader" {
		return
	}
	// Someone else already holds the role (an operator promoted, or a
	// previous failover finished): adopt it.
	for i, ep := range ss.eps {
		if i != cur && ep.healthy.Load() && ep.role.Load() == "leader" {
			ss.leader.Store(int32(i))
			rt.failovers.Inc()
			rt.logf("cluster: shard %s: adopting %s as leader", ss.name, ep.url)
			return
		}
	}
	if !rt.cfg.AutoFailover || ss.eps[cur].healthy.Load() {
		// Leader down but failover disabled, or the endpoint is healthy
		// and merely mid-transition (e.g. still reporting follower while
		// a promote lands): leave the pointer alone.
		return
	}
	// Promote the most caught-up healthy follower.
	best, bestApplied := -1, uint64(0)
	for i, ep := range ss.eps {
		if !ep.healthy.Load() || ep.role.Load() != "follower" {
			continue
		}
		if a := ep.applied.Load(); best == -1 || a > bestApplied {
			best, bestApplied = i, a
		}
	}
	if best == -1 {
		return
	}
	ep := ss.eps[best]
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	applied, err := Promote(pctx, rt.client, ep.url)
	cancel()
	if err != nil {
		rt.logf("cluster: shard %s: promote %s failed: %v", ss.name, ep.url, err)
		return
	}
	ep.role.Store("leader")
	ep.applied.Store(applied)
	ss.leader.Store(int32(best))
	rt.failovers.Inc()
	rt.logf("cluster: shard %s: promoted %s at applied seq %d", ss.name, ep.url, applied)
}

// leaderURL returns the shard's current write endpoint.
func (ss *shardState) leaderURL() string { return ss.eps[ss.leader.Load()].url }

// readURL returns the endpoint searches should hit: the leader when
// healthy, else any healthy endpoint (a follower serves reads while a
// failover is in flight), else the leader pointer as a best effort.
func (ss *shardState) readURL() string {
	if ep := ss.eps[ss.leader.Load()]; ep.healthy.Load() {
		return ep.url
	}
	for _, ep := range ss.eps {
		if ep.healthy.Load() {
			return ep.url
		}
	}
	return ss.leaderURL()
}

// Handler builds the router's route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	instrument := func(path string, h http.HandlerFunc) http.HandlerFunc {
		reqs, errs, lat := rt.requests[path], rt.errors[path], rt.latency[path]
		return func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			reqs.Inc()
			sw := &statusWriter{ResponseWriter: w}
			h(sw, r)
			if sw.status >= 400 {
				errs.Inc()
			}
			lat.ObserveSince(start)
		}
	}
	mux.HandleFunc("/v1/neighbors", instrument("/v1/neighbors", rt.handleNeighbors))
	mux.HandleFunc("/v1/upsert", instrument("/v1/upsert", rt.handleUpsert))
	mux.HandleFunc("/v1/delete", instrument("/v1/delete", rt.handleDelete))
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.Handle("/metrics", rt.reg.Handler(obs.Default()))
	return mux
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// budget derives the request budget: deadline_ms in the body, then the
// client's header, then the default — the same precedence as the
// daemon, with the daemon's strict-validation contract (invalid
// overrides are a 400, never silently the default).
func (rt *Router) budget(r *http.Request, deadlineMS int) (time.Duration, error) {
	if deadlineMS < 0 {
		return 0, fmt.Errorf("deadline_ms must be positive, got %d", deadlineMS)
	}
	d := rt.cfg.DefaultDeadline
	if h := r.Header.Get(deadlineHeader); h != "" {
		v, err := strconv.Atoi(h)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("invalid %s header %q: want a positive integer of milliseconds", deadlineHeader, h)
		}
		d = time.Duration(v) * time.Millisecond
	}
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	return d, nil
}

// shardBudget converts the request budget into the per-shard deadline:
// the budget minus the merge margin, never below half the budget.
func (rt *Router) shardBudget(budget time.Duration) time.Duration {
	margin := rt.cfg.MergeMargin
	if margin <= 0 {
		margin = budget / 10
		if margin < 2*time.Millisecond {
			margin = 2 * time.Millisecond
		}
		if margin > 50*time.Millisecond {
			margin = 50 * time.Millisecond
		}
	}
	sb := budget - margin
	if sb < budget/2 {
		sb = budget / 2
	}
	return sb
}

// The wire shapes mirror cmd/ehnad's /v1/neighbors contract.
type neighborQuery struct {
	ID     *graph.NodeID `json:"id,omitempty"`
	Vector []float64     `json:"vector,omitempty"`
	K      int           `json:"k,omitempty"`
}

type neighborsRequest struct {
	neighborQuery
	Queries    []neighborQuery `json:"queries,omitempty"`
	DeadlineMS int             `json:"deadline_ms,omitempty"`
}

const defaultK = 10

// shardAnswer is one shard's response to the scattered batch.
type shardAnswer struct {
	batches  [][]ann.Result
	degraded bool
	err      error
}

func (rt *Router) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req neighborsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	budget, err := rt.budget(r, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	single := len(req.Queries) == 0
	queries := req.Queries
	defK := req.K
	if single {
		queries = []neighborQuery{req.neighborQuery}
	} else if defK <= 0 {
		defK = defaultK
	}

	// Resolve id-queries into vectors via the owning shard, so every
	// shard can score every query (a non-owner has no row for the id).
	type resolved struct {
		vec  []float64
		k    int
		self *graph.NodeID
	}
	res := make([]resolved, len(queries))
	for i, q := range queries {
		k := q.K
		if k <= 0 {
			k = defK
			if single {
				k = defaultK
			}
		}
		switch {
		case q.Vector != nil && q.ID != nil:
			writeError(w, http.StatusBadRequest, "query %d: query has both id and vector", i)
			return
		case q.Vector != nil:
			res[i] = resolved{vec: q.Vector, k: k}
		case q.ID != nil:
			vec, err := rt.fetchVector(ctx, *q.ID)
			if err != nil {
				status := http.StatusBadRequest
				if !errors.Is(err, errNotFound) {
					status = http.StatusServiceUnavailable
				}
				writeError(w, status, "query %d: %v", i, err)
				return
			}
			id := *q.ID
			res[i] = resolved{vec: vec, k: k, self: &id}
		default:
			writeError(w, http.StatusBadRequest, "query %d: query needs id or vector", i)
			return
		}
	}

	// Scatter: every shard scores every query at k (+1 for self-trim).
	out := make([]neighborQuery, len(res))
	for i, rq := range res {
		ask := rq.k
		if rq.self != nil {
			ask++
		}
		vec := rq.vec
		out[i] = neighborQuery{Vector: vec, K: ask}
	}
	body, _ := json.Marshal(map[string]any{"queries": out})
	shardDeadline := rt.shardBudget(budget)

	answers := make([]shardAnswer, len(rt.shards))
	var wg sync.WaitGroup
	for si, ss := range rt.shards {
		wg.Add(1)
		go func(si int, ss *shardState) {
			defer wg.Done()
			answers[si] = rt.searchShard(ctx, ss, body, shardDeadline)
		}(si, ss)
	}
	wg.Wait()

	answered := 0
	anyDegraded := false
	for si := range answers {
		if answers[si].err != nil {
			rt.partials.Inc()
			rt.shardErrs[si].Inc()
			rt.logf("cluster: shard %s search: %v", rt.shards[si].name, answers[si].err)
			continue
		}
		answered++
		anyDegraded = anyDegraded || answers[si].degraded
	}
	if answered == 0 {
		writeError(w, http.StatusServiceUnavailable, "no shards answered")
		return
	}

	// Gather: merge per query across answered shards, re-rank globally
	// by score (desc, id asc for determinism), trim self, cut to k.
	merged := make([][]ann.Result, len(res))
	for qi := range res {
		var all []ann.Result
		for si := range answers {
			a := &answers[si]
			if a.err != nil || qi >= len(a.batches) {
				continue
			}
			all = append(all, a.batches[qi]...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].ID < all[j].ID
		})
		if self := res[qi].self; self != nil {
			kept := all[:0]
			for _, x := range all {
				if x.ID != *self {
					kept = append(kept, x)
				}
			}
			all = kept
		}
		if len(all) > res[qi].k {
			all = all[:res[qi].k]
		}
		if all == nil {
			all = []ann.Result{}
		}
		merged[qi] = all
	}

	resp := map[string]any{}
	if single {
		resp["results"] = merged[0]
	} else {
		resp["batches"] = merged
	}
	if partial := answered < len(rt.shards); partial || anyDegraded {
		resp["degraded"] = true
		resp["shards_answered"] = answered
		resp["shards_total"] = len(rt.shards)
		if partial {
			rt.degraded.Inc()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// searchShard posts the scattered batch to one shard under its share
// of the budget.
func (rt *Router) searchShard(ctx context.Context, ss *shardState, body []byte, deadline time.Duration) shardAnswer {
	sctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, ss.readURL()+"/v1/neighbors", bytes.NewReader(body))
	if err != nil {
		return shardAnswer{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, strconv.Itoa(int(deadline/time.Millisecond)))
	resp, err := rt.client.Do(req)
	if err != nil {
		return shardAnswer{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return shardAnswer{err: fmt.Errorf("status %s: %s", resp.Status, b)}
	}
	var out struct {
		Batches  [][]ann.Result `json:"batches"`
		Degraded bool           `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return shardAnswer{err: err}
	}
	return shardAnswer{batches: out.Batches, degraded: out.Degraded}
}

var errNotFound = errors.New("node not in store")

// fetchVector resolves a stored node id into its vector by asking the
// owning shard's read endpoint.
func (rt *Router) fetchVector(ctx context.Context, id graph.NodeID) ([]float64, error) {
	ss := rt.shards[rt.cfg.Map.Owner(id)]
	u := fmt.Sprintf("%s/v1/vector?id=%d", ss.readURL(), id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("resolve id %d on shard %s: %w", id, ss.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("node %d %w", id, errNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("resolve id %d on shard %s: status %s", id, ss.name, resp.Status)
	}
	var out struct {
		Vector []float64 `json:"vector"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Vector, nil
}

// The write shapes mirror cmd/ehnad's /v1/upsert and /v1/delete.
type upsertUpdate struct {
	ID     *graph.NodeID `json:"id"`
	Vector []float64     `json:"vector"`
}

type upsertRequest struct {
	upsertUpdate
	Updates []upsertUpdate `json:"updates,omitempty"`
}

type deleteRequest struct {
	ID  *graph.NodeID  `json:"id,omitempty"`
	IDs []graph.NodeID `json:"ids,omitempty"`
}

// shardWriteResult is the per-shard slice of a routed write.
type shardWriteResult struct {
	Count int    `json:"count"`
	Seq   uint64 `json:"seq,omitempty"`
	Error string `json:"error,omitempty"`
	code  int
}

// postShardWrite sends one write sub-request to the shard leader,
// retrying once after a synchronous re-probe (which may fail the shard
// over) when the leader refuses or is unreachable.
func (rt *Router) postShardWrite(ctx context.Context, ss *shardState, path string, body []byte) shardWriteResult {
	try := func() (shardWriteResult, bool) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ss.leaderURL()+path, bytes.NewReader(body))
		if err != nil {
			return shardWriteResult{Error: err.Error(), code: http.StatusInternalServerError}, false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			return shardWriteResult{Error: err.Error(), code: http.StatusServiceUnavailable}, true
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			res := shardWriteResult{Error: fmt.Sprintf("status %s: %s", resp.Status, bytes.TrimSpace(b)), code: resp.StatusCode}
			// Retry when the node can't own the write right now (a
			// follower answering 503, a daemon mid-restart); a 4xx is the
			// request's fault and a retry would not change it.
			return res, resp.StatusCode >= 500
		}
		var out struct {
			Upserted int    `json:"upserted"`
			Deleted  int    `json:"deleted"`
			Seq      uint64 `json:"seq"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return shardWriteResult{Error: err.Error(), code: http.StatusBadGateway}, false
		}
		return shardWriteResult{Count: out.Upserted + out.Deleted, Seq: out.Seq, code: http.StatusOK}, false
	}
	res, retry := try()
	if res.code == http.StatusOK || !retry {
		return res
	}
	// The leader refused or vanished: re-probe the shard now (the
	// health loop may be seconds away), which may adopt or promote a
	// new leader, then retry once.
	rt.shardErrs[rt.shardIndex(ss)].Inc()
	rt.probeShard(ctx, ss)
	res2, _ := try()
	return res2
}

func (rt *Router) shardIndex(ss *shardState) int {
	for i, s := range rt.shards {
		if s == ss {
			return i
		}
	}
	return 0
}

func (rt *Router) handleUpsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req upsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	updates := req.Updates
	if len(updates) == 0 {
		updates = []upsertUpdate{req.upsertUpdate}
	}
	for i, u := range updates {
		if u.ID == nil {
			writeError(w, http.StatusBadRequest, "update %d: missing id", i)
			return
		}
	}
	// Group by owning shard. Atomicity is per shard: a multi-shard
	// batch can land on some shards and fail on others (reported per
	// shard below).
	groups := make(map[int][]upsertUpdate)
	for _, u := range updates {
		si := rt.cfg.Map.Owner(*u.ID)
		groups[si] = append(groups[si], u)
	}
	scatterWrite(rt, w, r, "/v1/upsert", groups, func(g []upsertUpdate) []byte {
		b, _ := json.Marshal(map[string]any{"updates": g})
		return b
	}, "upserted")
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ids := req.IDs
	if req.ID != nil {
		ids = append(ids, *req.ID)
	}
	if len(ids) == 0 {
		writeError(w, http.StatusBadRequest, "delete needs id or ids")
		return
	}
	groups := make(map[int][]graph.NodeID)
	for _, id := range ids {
		si := rt.cfg.Map.Owner(id)
		groups[si] = append(groups[si], id)
	}
	scatterWrite(rt, w, r, "/v1/delete", groups, func(g []graph.NodeID) []byte {
		b, _ := json.Marshal(map[string]any{"ids": g})
		return b
	}, "deleted")
}

// scatterWrite fans grouped write bodies out to their shard leaders
// concurrently and aggregates the per-shard outcomes. All-success is a
// 200 with the summed count; any failure reports the per-shard map
// under the failing sub-request's status (the daemons are the source
// of truth for what committed).
func scatterWrite[T any](rt *Router, w http.ResponseWriter, r *http.Request, path string, groups map[int][]T, encode func([]T) []byte, countKey string) {
	budget, err := rt.budget(r, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	type keyed struct {
		si  int
		res shardWriteResult
	}
	out := make(chan keyed, len(groups))
	for si, g := range groups {
		go func(si int, g []T) {
			out <- keyed{si, rt.postShardWrite(ctx, rt.shards[si], path, encode(g))}
		}(si, g)
	}
	total := 0
	status := http.StatusOK
	perShard := make(map[string]shardWriteResult, len(groups))
	for range groups {
		k := <-out
		perShard[rt.shards[k.si].name] = k.res
		total += k.res.Count
		if k.res.code != http.StatusOK {
			// Prefer reporting a retryable condition as 503; a client 4xx
			// passes through when it is the only failure class.
			if status == http.StatusOK || k.res.code >= 500 {
				status = k.res.code
			}
			if k.res.code >= 500 {
				status = http.StatusServiceUnavailable
			}
		}
	}
	resp := map[string]any{countKey: total, "shards": perShard}
	if status != http.StatusOK {
		resp["error"] = "one or more shards failed; see shards"
	}
	writeJSON(w, status, resp)
}

// handleHealthz reports the router's cluster view: per shard, the
// elected leader and every endpoint's health, role and applied seq.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := make([]map[string]any, len(rt.shards))
	for si, ss := range rt.shards {
		eps := make([]map[string]any, len(ss.eps))
		for i, ep := range ss.eps {
			eps[i] = map[string]any{
				"url":     ep.url,
				"healthy": ep.healthy.Load(),
				"role":    ep.role.Load(),
				"applied": ep.applied.Load(),
			}
		}
		shards[si] = map[string]any{
			"name":      ss.name,
			"leader":    ss.leaderURL(),
			"endpoints": eps,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"map_version": rt.cfg.Map.Version,
		"shards":      shards,
	})
}

// handleReadyz is ready while at least one shard can answer: the
// partial-result contract keeps a router with any live shard useful,
// and degraded beats dark.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	healthyShards := 0
	for _, ss := range rt.shards {
		for _, ep := range ss.eps {
			if ep.healthy.Load() {
				healthyShards++
				break
			}
		}
	}
	if healthyShards == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": []string{"no healthy shard endpoints"}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":          true,
		"shards_healthy": healthyShards,
		"shards_total":   len(rt.shards),
	})
}
