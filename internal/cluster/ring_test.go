package cluster

import (
	"encoding/json"
	"testing"

	"ehna/internal/graph"
)

func specs(names ...string) []ShardSpec {
	out := make([]ShardSpec, len(names))
	for i, n := range names {
		out[i] = ShardSpec{Name: n, Endpoints: []string{"http://" + n}}
	}
	return out
}

// TestShardMapBalance checks the ring spreads a large id population
// across shards without gross skew, and that placement is a pure
// function of (map, id).
func TestShardMapBalance(t *testing.T) {
	m, err := NewShardMap(1, specs("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	counts := make([]int, m.NumShards())
	for id := 0; id < n; id++ {
		counts[m.Owner(graph.NodeID(id))]++
	}
	mean := n / m.NumShards()
	for si, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("shard %d owns %d of %d ids (mean %d): ring badly skewed, counts=%v", si, c, n, mean, counts)
		}
	}
	// Determinism: a rebuilt map places every id identically.
	m2, err := NewShardMap(1, specs("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 1000; id++ {
		if m.Owner(graph.NodeID(id)) != m2.Owner(graph.NodeID(id)) {
			t.Fatalf("id %d placed differently by identical maps", id)
		}
	}
}

// TestShardMapRebalanceMovesFewKeys pins the consistent-hashing
// property: adding a shard moves roughly 1/n of the keys, and every
// moved key moves TO the new shard — never between surviving shards.
func TestShardMapRebalanceMovesFewKeys(t *testing.T) {
	old, err := NewShardMap(1, specs("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	next, err := NewShardMap(2, specs("a", "b", "c", "d", "e"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	moved := 0
	for id := 0; id < n; id++ {
		o, w := old.Owner(graph.NodeID(id)), next.Owner(graph.NodeID(id))
		if o == w {
			continue
		}
		moved++
		if next.Shards[w].Name != "e" {
			t.Fatalf("id %d moved from %s to %s — keys may only move to the new shard",
				id, old.Shards[o].Name, next.Shards[w].Name)
		}
	}
	// Expect ~n/5 moved; allow a wide band for vnode variance.
	if lo, hi := n/10, n*3/10; moved < lo || moved > hi {
		t.Fatalf("adding 1 of 5 shards moved %d of %d keys, want within [%d,%d]", moved, n, lo, hi)
	}
}

// TestShardMapJSONRoundTrip checks a marshaled map reparses into
// identical placement (the router loads its map from a flag/file).
func TestShardMapJSONRoundTrip(t *testing.T) {
	m, err := NewShardMap(7, []ShardSpec{
		{Name: "a", Endpoints: []string{"http://h1:7070", "http://h2:7070"}},
		{Name: "b", Endpoints: []string{"http://h3:7070"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseShardMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 7 || m2.NumShards() != 2 || len(m2.Shards[0].Endpoints) != 2 {
		t.Fatalf("round trip lost structure: %+v", m2)
	}
	for id := 0; id < 2000; id++ {
		if m.Owner(graph.NodeID(id)) != m2.Owner(graph.NodeID(id)) {
			t.Fatalf("id %d placed differently after JSON round trip", id)
		}
	}
}

// TestShardMapValidation rejects the constructions the router must
// never boot with.
func TestShardMapValidation(t *testing.T) {
	if _, err := NewShardMap(1, nil); err == nil {
		t.Fatal("empty map accepted")
	}
	if _, err := NewShardMap(1, []ShardSpec{{Name: "", Endpoints: []string{"x"}}}); err == nil {
		t.Fatal("unnamed shard accepted")
	}
	if _, err := NewShardMap(1, []ShardSpec{{Name: "a", Endpoints: []string{"x"}}, {Name: "a", Endpoints: []string{"y"}}}); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
	if _, err := NewShardMap(1, []ShardSpec{{Name: "a"}}); err == nil {
		t.Fatal("endpointless shard accepted")
	}
}
