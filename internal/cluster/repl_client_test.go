package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"ehna/internal/graph"
	"ehna/internal/wal"
)

// stubLeader serves /v1/repl/stream from an in-memory record list
// using the real wire codec, so the client is tested against exactly
// the frames a daemon would ship.
type stubLeader struct {
	mu        sync.Mutex
	recs      []wal.Record // recs[i].Seq == truncated+i+1
	truncated uint64       // seqs ≤ truncated are gone (snapshot watermark)
	srv       *httptest.Server
}

func newStubLeader() *stubLeader {
	s := &stubLeader{}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/stream", s.stream)
	s.srv = httptest.NewServer(mux)
	return s
}

func (s *stubLeader) append(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		seq := s.truncated + uint64(len(s.recs)) + 1
		s.recs = append(s.recs, wal.Record{
			Seq: seq, Op: wal.OpUpsert, ID: graph.NodeID(seq % 32),
			Vec: []float64{float64(seq), float64(seq) / 2},
		})
	}
}

func (s *stubLeader) stream(w http.ResponseWriter, r *http.Request) {
	after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	s.mu.Lock()
	recs, truncated := s.recs, s.truncated
	s.mu.Unlock()
	last := truncated + uint64(len(recs))
	w.Header().Set(LastSeqHeader, fmt.Sprint(last))
	if after < truncated {
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(map[string]uint64{"watermark": truncated})
		return
	}
	enc := wal.NewEncoder(w)
	for _, rec := range recs {
		if rec.Seq > after {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
	}
}

// TestReplClientCatchUpAndTail streams an existing history, then new
// appends, and checks the follower applies every record exactly once
// in order with leader seqs preserved.
func TestReplClientCatchUpAndTail(t *testing.T) {
	leader := newStubLeader()
	defer leader.srv.Close()
	leader.append(100)

	var mu sync.Mutex
	var applied []wal.Record
	watermark := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		if len(applied) == 0 {
			return 0
		}
		return applied[len(applied)-1].Seq
	}
	rc := &ReplClient{
		Leader: leader.srv.URL,
		Apply: func(recs []wal.Record) error {
			mu.Lock()
			applied = append(applied, recs...)
			mu.Unlock()
			return nil
		},
		Applied:      watermark,
		PollInterval: 10 * time.Millisecond,
		BatchMax:     16, // force multiple Apply calls per round
		Logf:         t.Logf,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { rc.Run(ctx); close(done) }()

	waitFor := func(want uint64) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for watermark() != want {
			select {
			case <-deadline:
				t.Fatalf("applied watermark %d, want %d", watermark(), want)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	waitFor(100)
	leader.append(37)
	waitFor(137)
	cancel()
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(applied) != 137 {
		t.Fatalf("applied %d records, want 137 (duplicates or drops)", len(applied))
	}
	for i, r := range applied {
		if r.Seq != uint64(i+1) {
			t.Fatalf("applied[%d].Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	if rc.LeaderSeq() != 137 {
		t.Fatalf("LeaderSeq = %d, want 137", rc.LeaderSeq())
	}
}

// TestReplClientGapSignalsBootstrap starts a follower behind a
// truncated leader and checks OnGap fires with the leader watermark
// instead of silently skipping records.
func TestReplClientGapSignalsBootstrap(t *testing.T) {
	leader := newStubLeader()
	defer leader.srv.Close()
	leader.mu.Lock()
	leader.truncated = 50
	leader.mu.Unlock()
	leader.append(10) // seqs 51..60

	gapCh := make(chan uint64, 1)
	rc := &ReplClient{
		Leader:  leader.srv.URL,
		Apply:   func([]wal.Record) error { return nil },
		Applied: func() uint64 { return 3 }, // far behind the truncation
		OnGap: func(wm uint64) error {
			select {
			case gapCh <- wm:
			default:
			}
			return nil
		},
		PollInterval: 10 * time.Millisecond,
		Logf:         t.Logf,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rc.Run(ctx)
	select {
	case wm := <-gapCh:
		if wm != 50 {
			t.Fatalf("OnGap watermark = %d, want 50", wm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnGap never fired")
	}
}

// TestReplClientRejectsDiscontinuity feeds a stream that skips a seq
// and checks the batch before the gap applies while nothing after the
// discontinuity does.
func TestReplClientRejectsDiscontinuity(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/stream", func(w http.ResponseWriter, r *http.Request) {
		enc := wal.NewEncoder(w)
		enc.Encode(wal.Record{Seq: 1, Op: wal.OpDelete, ID: 1})
		enc.Encode(wal.Record{Seq: 2, Op: wal.OpDelete, ID: 2})
		enc.Encode(wal.Record{Seq: 4, Op: wal.OpDelete, ID: 4}) // gap: 3 missing
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var mu sync.Mutex
	var seqs []uint64
	rc := &ReplClient{
		Leader: srv.URL,
		Apply: func(recs []wal.Record) error {
			mu.Lock()
			for _, r := range recs {
				seqs = append(seqs, r.Seq)
			}
			mu.Unlock()
			return nil
		},
		Applied: func() uint64 {
			mu.Lock()
			defer mu.Unlock()
			if len(seqs) == 0 {
				return 0
			}
			return seqs[len(seqs)-1]
		},
		Logf: t.Logf,
	}
	n, err := rc.round(context.Background(), &http.Client{})
	if err == nil {
		t.Fatal("round accepted a seq discontinuity")
	}
	mu.Lock()
	defer mu.Unlock()
	if n != 2 || len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("applied %v (n=%d), want the contiguous prefix [1 2]", seqs, n)
	}
}
