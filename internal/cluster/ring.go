// Package cluster is the distributed serving plane: a versioned
// consistent-hash shard map over node ids, a WAL-shipping replication
// client that keeps follower daemons in lockstep with their shard
// leader, and the stateless scatter-gather router cmd/ehnad-router
// serves queries through.
//
// The unit of placement is the node id: every id hashes onto a ring of
// virtual points, and the shard owning the next point clockwise owns
// the id. Shards carry an ordered endpoint list (leader first at boot;
// the router re-elects on health evidence), and the map carries a
// version so a rebalanced layout — built offline by exporting each
// shard with /v1/export and re-seeding — can be told apart from the
// one it replaces.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"ehna/internal/graph"
)

// vnodes is the number of virtual ring points per shard. 64 keeps the
// worst-case load skew across a handful of shards within a few percent
// while the ring stays small enough to rebuild on every map load.
const vnodes = 64

// ShardSpec names one shard and its daemon endpoints. Endpoints are
// base URLs ("http://host:port"); the first is treated as the leader
// until health evidence says otherwise.
type ShardSpec struct {
	Name      string   `json:"name"`
	Endpoints []string `json:"endpoints"`
}

// ringPoint is one virtual node: a position on the hash ring and the
// shard that owns keys landing at or before it.
type ringPoint struct {
	hash  uint64
	shard int
}

// ShardMap is a versioned consistent-hash placement of node ids onto
// shards. Immutable after construction; rebalancing builds a new map
// with a higher version.
type ShardMap struct {
	Version uint64      `json:"version"`
	Shards  []ShardSpec `json:"shards"`

	ring []ringPoint
}

// NewShardMap builds the ring for the given shards. Shard names must
// be unique and non-empty, and every shard needs at least one endpoint.
func NewShardMap(version uint64, shards []ShardSpec) (*ShardMap, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: shard map needs at least one shard")
	}
	seen := make(map[string]bool, len(shards))
	m := &ShardMap{Version: version, Shards: shards, ring: make([]ringPoint, 0, vnodes*len(shards))}
	for si, s := range shards {
		if s.Name == "" {
			return nil, fmt.Errorf("cluster: shard %d has no name", si)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Endpoints) == 0 {
			return nil, fmt.Errorf("cluster: shard %q has no endpoints", s.Name)
		}
		for v := 0; v < vnodes; v++ {
			m.ring = append(m.ring, ringPoint{hash: hashString(fmt.Sprintf("%s#%d", s.Name, v)), shard: si})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) break by shard
		// index so the ring order is deterministic across processes.
		return m.ring[i].shard < m.ring[j].shard
	})
	return m, nil
}

// ParseShardMap builds a ShardMap from its JSON form.
func ParseShardMap(data []byte) (*ShardMap, error) {
	var raw struct {
		Version uint64      `json:"version"`
		Shards  []ShardSpec `json:"shards"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("cluster: parse shard map: %w", err)
	}
	return NewShardMap(raw.Version, raw.Shards)
}

// Owner returns the index (into Shards) of the shard owning id.
func (m *ShardMap) Owner(id graph.NodeID) int {
	h := hashID(id)
	// First ring point with hash > h; wraps to ring[0].
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash > h })
	if i == len(m.ring) {
		i = 0
	}
	return m.ring[i].shard
}

// NumShards returns the shard count.
func (m *ShardMap) NumShards() int { return len(m.Shards) }

// hashID hashes a node id onto the ring: FNV-1a over its 4-byte LE
// encoding, pushed through a 64-bit avalanche finalizer. FNV alone
// leaves nearby inputs correlated in the high bits the ring's sort
// order lives on; the finalizer spreads them. Both stages are fixed
// arithmetic — placement must be stable across architectures and
// releases.
func hashID(id graph.NodeID) uint64 {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(id))
	h := fnv.New64a()
	h.Write(b[:])
	return mix64(h.Sum64())
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 64-bit finalizer: a full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
