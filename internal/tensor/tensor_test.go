package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("bad layout: %v", m.Data)
	}
}

func TestFromSliceWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("bad FromRows: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	m.SetRow(0, []float64{9, 8, 7})
	if m.At(0, 0) != 9 || m.At(0, 2) != 7 {
		t.Fatal("SetRow failed")
	}
	r := m.Row(0)
	r[0] = 5
	if m.At(0, 0) != 5 {
		t.Fatal("Row must be a view")
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 2))
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(4, 3, 1, rng)
	b := Randn(4, 5, 1, rng)
	got := MatMulATransposed(a, b)
	want := MatMul(Transpose(a), b)
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulATransposed mismatch")
	}
	c := Randn(6, 3, 1, rng)
	got2 := MatMulBTransposed(a.Clone(), c)
	want2 := MatMul(a, Transpose(c))
	if !Equal(got2, want2, 1e-12) {
		t.Fatal("MatMulBTransposed mismatch")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Randn(5, 7, 1, rng)
	if !Equal(Transpose(Transpose(m)), m, 0) {
		t.Fatal("transpose twice must be identity")
	}
}

func TestAddSubHadamardScale(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if !Equal(Add(a, b), FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatal("Add")
	}
	if !Equal(Sub(b, a), FromSlice(1, 3, []float64{3, 3, 3}), 0) {
		t.Fatal("Sub")
	}
	if !Equal(Hadamard(a, b), FromSlice(1, 3, []float64{4, 10, 18}), 0) {
		t.Fatal("Hadamard")
	}
	if !Equal(Scale(a, 2), FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Fatal("Scale")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{3, 4})
	AddInPlace(a, b)
	if a.At(0, 1) != 6 {
		t.Fatal("AddInPlace")
	}
	AxpyInPlace(a, 2, b)
	if a.At(0, 0) != 10 {
		t.Fatal("AxpyInPlace")
	}
	ScaleInPlace(a, 0.5)
	if a.At(0, 0) != 5 {
		t.Fatal("ScaleInPlace")
	}
}

func TestAddRowBroadcast(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	bias := FromSlice(1, 2, []float64{10, 20})
	got := AddRowBroadcast(m, bias)
	want := FromSlice(2, 2, []float64{11, 22, 13, 24})
	if !Equal(got, want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestActivations(t *testing.T) {
	m := FromSlice(1, 3, []float64{-1, 0, 1})
	r := ReLU(m)
	if r.At(0, 0) != 0 || r.At(0, 2) != 1 {
		t.Fatal("ReLU")
	}
	s := Sigmoid(m)
	if math.Abs(s.At(0, 1)-0.5) > 1e-12 {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	th := Tanh(m)
	if math.Abs(th.At(0, 1)) > 1e-12 {
		t.Fatal("Tanh(0) != 0")
	}
}

func TestSigmoidScalarStable(t *testing.T) {
	if v := SigmoidScalar(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %v", v)
	}
	if v := SigmoidScalar(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %v", v)
	}
	// Symmetry: sigma(-x) = 1 - sigma(x).
	for _, x := range []float64{-3, -0.5, 0, 0.7, 5} {
		if d := SigmoidScalar(-x) + SigmoidScalar(x) - 1; math.Abs(d) > 1e-12 {
			t.Fatalf("symmetry broken at %v: %v", x, d)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 1, 1, 1000, 1000, 1000})
	s := SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += s.At(i, j)
			if math.Abs(s.At(i, j)-1.0/3) > 1e-9 {
				t.Fatalf("uniform softmax row %d got %v", i, s.Row(i))
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax row %d does not sum to 1", i)
		}
	}
}

func TestSoftmaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			// Keep values in a sane range to avoid Inf inputs from quick.
			vals[i] = math.Mod(vals[i], 50)
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
		}
		out := make([]float64, len(vals))
		SoftmaxInto(out, vals)
		var sum float64
		for _, v := range out {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if !Equal(SumRows(m), FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatal("SumRows")
	}
	if !Equal(MeanRows(m), FromSlice(1, 3, []float64{2.5, 3.5, 4.5}), 0) {
		t.Fatal("MeanRows")
	}
	if m.Sum() != 21 {
		t.Fatal("Sum")
	}
}

func TestDotAndNorms(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if Dot(a, b) != 32 {
		t.Fatal("Dot")
	}
	if DotVec(a.Data, b.Data) != 32 {
		t.Fatal("DotVec")
	}
	if math.Abs(L2NormVec([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("L2NormVec")
	}
	if SqDistVec(a.Data, b.Data) != 27 {
		t.Fatal("SqDistVec")
	}
	if math.Abs(a.Frobenius()-math.Sqrt(14)) > 1e-12 {
		t.Fatal("Frobenius")
	}
}

func TestConcatCols(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	got := ConcatCols(a, b)
	want := FromSlice(2, 3, []float64{1, 3, 4, 2, 5, 6})
	if !Equal(got, want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestStackRows(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	got := StackRows(a, b)
	want := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	if !Equal(got, want, 0) {
		t.Fatalf("got %v", got)
	}
	empty := StackRows()
	if empty.Rows != 0 {
		t.Fatal("empty stack")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := Randn(3, 4, 1, rng)
		b := Randn(4, 2, 1, rng)
		c := Randn(2, 5, 1, rng)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		if !Equal(left, right, 1e-9) {
			t.Fatal("matmul associativity violated")
		}
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(2, 2, 1, rand.New(rand.NewSource(42)))
	b := Randn(2, 2, 1, rand.New(rand.NewSource(42)))
	if !Equal(a, b, 0) {
		t.Fatal("same seed must give same matrix")
	}
}

func TestUniformRange(t *testing.T) {
	m := Uniform(10, 10, -0.5, 0.5, rand.New(rand.NewSource(3)))
	for _, v := range m.Data {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform value out of range: %v", v)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(128, 128, 1, rng)
	y := Randn(128, 128, 1, rng)
	out := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}
