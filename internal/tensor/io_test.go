package tensor

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixTSVRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{0.5, -1.25, 3}, {1e-9, 2e6, -0}})
	var buf bytes.Buffer
	if err := m.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, m, 0) {
		t.Fatalf("roundtrip mismatch: %v vs %v", got.Data, m.Data)
	}
}

func TestMatrixReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "0\n",
		"bad index":      "x 1 2\n",
		"out of order":   "1 1 2\n",
		"bad value":      "0 nope\n",
		"ragged rows":    "0 1 2\n1 1\n",
		"empty input":    "",
		"skipped index":  "0 1\n2 1\n",
	}
	for name, input := range cases {
		if _, err := ReadTSV(strings.NewReader(input)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestMatrixReadTSVSkipsBlankLines(t *testing.T) {
	got, err := ReadTSV(strings.NewReader("0\t1\t2\n\n1\t3\t4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 2 || got.At(1, 1) != 4 {
		t.Fatalf("parsed %v", got)
	}
}

func TestMatrixWriteTSVError(t *testing.T) {
	m := FromRows([][]float64{{1}})
	if err := m.WriteTSV(failWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }
