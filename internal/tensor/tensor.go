// Package tensor provides dense float64 matrix and vector kernels used by
// the autodiff tape (internal/ag) and the neural layers (internal/nn).
//
// Matrices are row-major. Dimension mismatches are programmer errors and
// panic, mirroring the behaviour of slice indexing in the standard library.
// Hot-path kernels have allocation-free *Into variants.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"ehna/internal/vecmath"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Randn returns a matrix with entries drawn from N(0, std²).
func Randn(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// Uniform returns a matrix with entries drawn uniformly from [lo, hi).
func Uniform(rows, cols int, lo, hi float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: SetRow len %d != cols %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Zero sets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)%v", m.Rows, m.Cols, m.Data)
}

func sameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b without allocating. out must not alias a or b.
func MatMulInto(out, a, b *Matrix) {
	out.Zero()
	MatMulAddInto(out, a, b)
}

// MatMulAddInto computes out += a·b without allocating. out must not
// alias a or b.
func MatMulAddInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			vecmath.Axpy(orow, av, b.Data[k*n:(k+1)*n])
		}
	}
}

// MatMulATransposed returns aᵀ·b where a is given untransposed.
func MatMulATransposed(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulAT rows %d != %d", a.Rows, b.Rows))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			vecmath.Axpy(out.Row(i), av, brow)
		}
	}
	return out
}

// MatMulBTransposed returns a·bᵀ where b is given untransposed.
func MatMulBTransposed(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBT cols %d != %d", a.Cols, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = vecmath.Dot(arow, b.Row(j))
		}
	}
	return out
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	sameShape(a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix {
	sameShape(a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the element-wise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	sameShape(a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s·m.
func Scale(m *Matrix, s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	sameShape(a, b)
	vecmath.Add(a.Data, b.Data)
}

// AxpyInPlace computes a += s·b.
func AxpyInPlace(a *Matrix, s float64, b *Matrix) {
	sameShape(a, b)
	vecmath.Axpy(a.Data, s, b.Data)
}

// ScaleInPlace computes m *= s.
func ScaleInPlace(m *Matrix, s float64) {
	vecmath.ScaleInPlace(m.Data, s)
}

// AddRowBroadcast returns m with the 1×cols row vector bias added to every row.
func AddRowBroadcast(m, bias *Matrix) *Matrix {
	if bias.Rows != 1 || bias.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowBroadcast bias %dx%d for %dx%d", bias.Rows, bias.Cols, m.Rows, m.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for j, v := range mrow {
			orow[j] = v + bias.Data[j]
		}
	}
	return out
}

// Apply returns f applied element-wise to m.
func Apply(m *Matrix, f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sigmoid returns the logistic function applied element-wise.
func Sigmoid(m *Matrix) *Matrix { return Apply(m, SigmoidScalar) }

// Tanh returns tanh applied element-wise.
func Tanh(m *Matrix) *Matrix { return Apply(m, math.Tanh) }

// ReLU returns max(0, x) applied element-wise.
func ReLU(m *Matrix) *Matrix {
	return Apply(m, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// SigmoidScalar is the numerically stable logistic function.
func SigmoidScalar(x float64) float64 { return vecmath.Sigmoid(x) }

// SoftmaxRows returns row-wise softmax of m.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		SoftmaxInto(out.Row(i), m.Row(i))
	}
	return out
}

// SoftmaxInto writes softmax(src) into dst. dst may alias src.
func SoftmaxInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: SoftmaxInto length mismatch")
	}
	if len(src) == 0 {
		return
	}
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// SumRows returns a 1×cols matrix with the column sums of m.
func SumRows(m *Matrix) *Matrix {
	out := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// MeanRows returns a 1×cols matrix with the column means of m.
func MeanRows(m *Matrix) *Matrix {
	out := SumRows(m)
	if m.Rows > 0 {
		ScaleInPlace(out, 1/float64(m.Rows))
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Dot returns the inner product of two equal-shape matrices flattened.
func Dot(a, b *Matrix) float64 {
	sameShape(a, b)
	return vecmath.Dot(a.Data, b.Data)
}

// DotVec returns the inner product of two equal-length vectors.
// It is a thin veneer over vecmath.Dot, kept for callers that already
// import tensor.
func DotVec(a, b []float64) float64 { return vecmath.Dot(a, b) }

// L2NormVec returns the Euclidean norm of v.
func L2NormVec(v []float64) float64 { return vecmath.Norm(v) }

// SqDistVec returns the squared Euclidean distance between a and b.
func SqDistVec(a, b []float64) float64 { return vecmath.SqDist(a, b) }

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 { return L2NormVec(m.Data) }

// ConcatCols returns [a ‖ b] with the same number of rows.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols rows %d != %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// StackRows returns the matrices stacked vertically. All must share Cols.
func StackRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("tensor: StackRows cols %d != %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	r := 0
	for _, m := range ms {
		copy(out.Data[r*cols:], m.Data)
		r += m.Rows
	}
	return out
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
