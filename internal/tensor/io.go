package tensor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV writes the matrix as one row per line: an integer row index
// followed by tab-separated values — the embedding interchange format of
// cmd/ehna and most embedding toolchains.
func (m *Matrix) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		if _, err := fmt.Fprintf(bw, "%d", i); err != nil {
			return err
		}
		for _, v := range m.Row(i) {
			if _, err := fmt.Fprintf(bw, "\t%g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses the WriteTSV format. Row indices are validated to be the
// line's position (dense, in order); all rows must have equal width.
func ReadTSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var rows [][]float64
	lineNo := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("tensor: line %d: want index + values, got %d fields", lineNo+1, len(fields))
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d: bad row index %q: %v", lineNo+1, fields[0], err)
		}
		if idx != lineNo {
			return nil, fmt.Errorf("tensor: line %d: row index %d out of order", lineNo+1, idx)
		}
		vals := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("tensor: line %d: bad value %q: %v", lineNo+1, f, err)
			}
			vals[i] = v
		}
		if len(rows) > 0 && len(vals) != len(rows[0]) {
			return nil, fmt.Errorf("tensor: line %d: %d values, want %d", lineNo+1, len(vals), len(rows[0]))
		}
		rows = append(rows, vals)
		lineNo++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tensor: read: %v", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("tensor: empty input")
	}
	return FromRows(rows), nil
}
