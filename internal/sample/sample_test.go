package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ehna/internal/graph"
)

func TestNewAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewAlias([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := NewAlias([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Inf weight accepted")
	}
}

func TestMustAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAlias(nil)
}

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := MustAlias(weights)
	if a.Len() != 4 {
		t.Fatal("Len")
	}
	rng := rand.New(rand.NewSource(1))
	const draws = 200000
	counts := make([]int, 4)
	for i := 0; i < draws; i++ {
		counts[a.Draw(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d: empirical %g want %g", i, got, want)
		}
	}
}

func TestAliasDegenerateSingle(t *testing.T) {
	a := MustAlias([]float64{5})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		if a.Draw(rng) != 0 {
			t.Fatal("single-element table must always return 0")
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := MustAlias([]float64{1, 0, 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if a.Draw(rng) == 1 {
			t.Fatal("zero-weight index drawn")
		}
	}
}

// Property: alias tables over random weights stay within statistical
// tolerance of the target distribution.
func TestAliasProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		w := make([]float64, n)
		var sum float64
		for i := range w {
			w[i] = rng.Float64() + 0.05
			sum += w[i]
		}
		a := MustAlias(w)
		const draws = 30000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[a.Draw(rng)]++
		}
		for i := range w {
			want := w[i] / sum
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func starGraph(t *testing.T) *graph.Temporal {
	t.Helper()
	// Node 0 is a hub of degree 5; leaves have degree 1; node 6 isolated.
	g := graph.NewTemporal(7)
	for i := 1; i <= 5; i++ {
		if err := g.AddEdge(0, graph.NodeID(i), 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g.Build()
	return g
}

func TestNegativeSamplerDistribution(t *testing.T) {
	g := starGraph(t)
	s, err := NewNegative(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	const draws = 100000
	counts := make(map[graph.NodeID]int)
	for i := 0; i < draws; i++ {
		counts[s.Draw(rng)]++
	}
	if counts[6] != 0 {
		t.Fatal("isolated node sampled")
	}
	// Hub: 5^0.75, each leaf: 1; P(hub) = 5^0.75/(5^0.75+5).
	wHub := math.Pow(5, 0.75)
	wantHub := wHub / (wHub + 5)
	gotHub := float64(counts[0]) / draws
	if math.Abs(gotHub-wantHub) > 0.01 {
		t.Fatalf("hub probability %g want %g", gotHub, wantHub)
	}
}

func TestNegativeSamplerExcludes(t *testing.T) {
	g := starGraph(t)
	s, err := NewNegative(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		v := s.Draw(rng, 0)
		if v == 0 {
			t.Fatal("excluded hub sampled")
		}
	}
}

func TestNegativeSamplerAllIsolated(t *testing.T) {
	g := graph.NewTemporal(3)
	g.Build()
	if _, err := NewNegative(g); err == nil {
		t.Fatal("sampler over isolated-only graph accepted")
	}
}

func TestNegativeSamplerBoundedRejection(t *testing.T) {
	// Excluding every node must still terminate (returns some node).
	g := graph.NewTemporal(2)
	_ = g.AddEdge(0, 1, 1, 0)
	g.Build()
	s, err := NewNegative(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	_ = s.Draw(rng, 0, 1) // must not hang
}

func TestReservoir(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	got := Reservoir(5, 10, rng)
	if len(got) != 5 {
		t.Fatalf("k>n must clamp: len %d", len(got))
	}
	got = Reservoir(100, 10, rng)
	if len(got) != 10 {
		t.Fatalf("len %d want 10", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid or duplicate sample %d", v)
		}
		seen[v] = true
	}
}

func TestReservoirUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range Reservoir(10, 3, rng) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("index %d count %d want ~%g", i, c, want)
		}
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, 10000)
	for i := range w {
		w[i] = rng.Float64()
	}
	a := MustAlias(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Draw(rng)
	}
}
