// Package sample provides the sampling primitives shared by the EHNA
// trainer and the baselines: Walker's alias method for O(1) discrete
// sampling, the degree^0.75 negative-sampling noise distribution of
// word2vec (adopted by the paper, Section IV-D), and reservoir sampling.
package sample

import (
	"fmt"
	"math"
	"math/rand"

	"ehna/internal/graph"
)

// Alias is a Walker alias table supporting O(1) draws from an arbitrary
// discrete distribution over {0..n−1}.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights. At least one
// weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sample: empty weight vector")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("sample: weight[%d] = %g is not a finite non-negative number", i, w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("sample: all weights are zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical residue
	}
	return a, nil
}

// MustAlias is NewAlias that panics on error; for weights known valid.
func MustAlias(weights []float64) *Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(err)
	}
	return a
}

// Draw samples one index.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the support size.
func (a *Alias) Len() int { return len(a.prob) }

// Negative samples negative nodes from the noise distribution
// P(v) ∝ deg(v)^0.75 (Mikolov et al.; Eq. 6 of the paper).
type Negative struct {
	table *Alias
}

// NewNegative builds the sampler from the degrees of g. Isolated nodes get
// zero probability; if every node is isolated an error is returned.
func NewNegative(g *graph.Temporal) (*Negative, error) {
	n := g.NumNodes()
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(g.Degree(graph.NodeID(i))), 0.75)
	}
	t, err := NewAlias(w)
	if err != nil {
		return nil, fmt.Errorf("sample: negative sampler: %v", err)
	}
	return &Negative{table: t}, nil
}

// Draw samples one negative node, rejecting the excluded ids (e.g. the two
// endpoints of the positive edge). It gives up after a bounded number of
// rejections and returns the last draw, so pathological exclusion sets
// cannot loop forever.
func (s *Negative) Draw(rng *rand.Rand, exclude ...graph.NodeID) graph.NodeID {
	const maxTries = 32
	var v graph.NodeID
	for try := 0; try < maxTries; try++ {
		v = graph.NodeID(s.table.Draw(rng))
		hit := false
		for _, e := range exclude {
			if v == e {
				hit = true
				break
			}
		}
		if !hit {
			return v
		}
	}
	return v
}

// Reservoir fills out with a uniform sample of k items from a stream of n
// indices [0, n), using Vitter's algorithm R. Returns min(k, n) indices.
func Reservoir(n, k int, rng *rand.Rand) []int {
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = i
		}
	}
	return out
}
