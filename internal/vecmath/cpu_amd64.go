//go:build !noasm

package vecmath

// Local cpuid shim — the repo carries no dependencies, so AVX2
// detection is done directly: CPUID for the feature bits, XGETBV to
// confirm the OS actually saves the YMM state (a kernel that doesn't
// enable XSAVE for AVX leaves the registers corrupted across context
// switches, so the bit check alone is not enough).

// cpuid executes CPUID with the given leaf/subleaf. cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (only valid once OSXSAVE is confirmed).
func xgetbv() (eax, edx uint32)

// cpuHasAVX2 reports whether the CPU and OS together support the AVX2
// + FMA kernel set in simd_amd64.s.
func cpuHasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX state) must both be enabled
	// by the OS.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
