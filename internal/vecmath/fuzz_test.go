package vecmath

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeVecs turns fuzz bytes into two equal-length float64 vectors,
// rejecting NaN/Inf and absurd magnitudes so reference comparisons stay
// meaningful. Length is capped at 257 to cover every unroll remainder.
func decodeVecs(data []byte) (a, b []float64, ok bool) {
	if len(data) < 1 {
		return nil, nil, false
	}
	n := int(data[0]) // 0..255, plus the remainder cases below
	data = data[1:]
	if len(data) < 2*8*n {
		n = len(data) / 16
	}
	a = make([]float64, n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
			x = float64(i%7) - 3
		}
		if math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > 1e100 {
			y = float64(i%5) - 2
		}
		a[i], b[i] = x, y
	}
	return a, b, true
}

// FuzzKernelsMatchReference fuzzes the unrolled kernels against the
// naive scalar references. Run with: go test -fuzz=FuzzKernels ./internal/vecmath
func FuzzKernelsMatchReference(f *testing.F) {
	// Seed the corpus with every unroll remainder around the 4-element
	// block size plus a longer vector.
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65} {
		seed := make([]byte, 1+16*n)
		seed[0] = byte(n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(seed[1+16*i:], math.Float64bits(float64(i)-1.5))
			binary.LittleEndian.PutUint64(seed[1+16*i+8:], math.Float64bits(2.5-float64(i)))
		}
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := decodeVecs(data)
		if !ok {
			return
		}
		if got, want := Dot(a, b), refDot(a, b); !close12(got, want) {
			t.Fatalf("Dot n=%d: got %g want %g", len(a), got, want)
		}
		if got, want := SquaredL2(a), refSquaredL2(a); !close12(got, want) {
			t.Fatalf("SquaredL2 n=%d: got %g want %g", len(a), got, want)
		}
		if got, want := SqDist(a, b), refSqDist(a, b); !close12(got, want) {
			t.Fatalf("SqDist n=%d: got %g want %g", len(a), got, want)
		}
		dst := append([]float64(nil), a...)
		want := append([]float64(nil), a...)
		Axpy(dst, 0.5, b)
		for i := range want {
			want[i] += 0.5 * b[i]
		}
		for i := range want {
			if !close12(dst[i], want[i]) {
				t.Fatalf("Axpy n=%d: [%d] got %g want %g", len(a), i, dst[i], want[i])
			}
		}
	})
}

// FuzzSQ8RoundTrip fuzzes the scalar-quantization plane: encode→decode
// must never panic, every lane must reconstruct within the per-vector
// scale bound, and the asymmetric DotSQ8 must stay inside its
// documented error envelope against the exact Dot. Run with:
// go test -fuzz=FuzzSQ8RoundTrip ./internal/vecmath
func FuzzSQ8RoundTrip(f *testing.F) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 9, 64, 65} {
		seed := make([]byte, 1+16*n)
		seed[0] = byte(n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(seed[1+16*i:], math.Float64bits(float64(i)*0.75-1.5))
			binary.LittleEndian.PutUint64(seed[1+16*i+8:], math.Float64bits(2.5-float64(i)))
		}
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, q, ok := decodeVecs(data) // sanitized: finite, |x| ≤ 1e100
		if !ok {
			return
		}
		n := len(v)
		code := make([]int8, n)
		scale, offset, codeSum := EncodeSQ8(v, code)
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			t.Fatalf("EncodeSQ8 n=%d: non-finite scale %g", n, scale)
		}
		var wantSum int32
		for _, c := range code {
			wantSum += int32(c)
		}
		if codeSum != wantSum {
			t.Fatalf("EncodeSQ8 n=%d: codeSum %d want %d", n, codeSum, wantSum)
		}

		dec := make([]float64, n)
		DecodeSQ8(dec, code, scale, offset)
		laneBound := scale/2 + 1e-9*(math.Abs(offset)+256*scale+1)
		for i := range v {
			if d := math.Abs(dec[i] - v[i]); d > laneBound {
				t.Fatalf("n=%d lane %d: reconstruction err %g > %g (scale %g)", n, i, d, laneBound, scale)
			}
		}

		var l1q float64
		for _, x := range q {
			l1q += math.Abs(x)
		}
		got := DotSQ8(q, code, scale, offset, Sum(q))
		want := refDot(q, v)
		envelope := scale/2*l1q + 1e-9*(l1q*(math.Abs(offset)+128*scale)+math.Abs(want)+1)
		if d := math.Abs(got - want); d > envelope {
			t.Fatalf("DotSQ8 n=%d: |%g − %g| = %g > envelope %g", n, got, want, d, envelope)
		}
	})
}
