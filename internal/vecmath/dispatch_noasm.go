//go:build noasm || (!amd64 && !arm64)

package vecmath

// Scalar-only build: the flags are constants so the compiler folds the
// dispatch branches away and the linker drops the unreachable stubs —
// this build is byte-for-byte the pure-Go package.
const (
	simd64  = false
	simd32  = false
	simdSQ8 = false
	simdSym = false
	simdEnc = false
)

var backendName = "scalar"

func dotSIMD(a, b []float64) float64                               { panic("vecmath: no simd backend") }
func sqDistSIMD(a, b []float64) float64                            { panic("vecmath: no simd backend") }
func dot32SIMD(a, b []float32) float64                             { panic("vecmath: no simd backend") }
func sqDist32SIMD(a, b []float32) float64                          { panic("vecmath: no simd backend") }
func dotSQ8RawSIMD(q []float64, code []int8) float64               { panic("vecmath: no simd backend") }
func sqDistSQ8SIMD(q []float64, code []int8, s, o float64) float64 { panic("vecmath: no simd backend") }
func dotSQ8SymRawSIMD(ac, bc []int8) int32                         { panic("vecmath: no simd backend") }
func minMaxSIMD(v []float64) (lo, hi float64)                      { panic("vecmath: no simd backend") }
func quantizeSIMD(v []float64, code []int8, lo, inv float64) int32 { panic("vecmath: no simd backend") }
