//go:build !noasm

package vecmath

import (
	"os"
	"testing"
)

// TestBackendMatchesCPU asserts the selected backend is exactly what
// the CPU probe plus the env kill switch dictate — a deployment
// reading Backend() from /healthz must be able to trust it.
func TestBackendMatchesCPU(t *testing.T) {
	want := "scalar"
	if cpuHasAVX2() && os.Getenv("EHNA_NOSIMD") == "" {
		want = "avx2"
	}
	if got := Backend(); got != want {
		t.Fatalf("Backend() = %q, cpu probe + env say %q", got, want)
	}
	on := want == "avx2"
	for name, flag := range map[string]bool{
		"simd64": simd64, "simd32": simd32, "simdSQ8": simdSQ8,
		"simdSym": simdSym, "simdEnc": simdEnc,
	} {
		if flag != on {
			t.Errorf("%s = %v, want %v for backend %q", name, flag, on, want)
		}
	}
}
