//go:build !noasm

package vecmath

import "os"

// Per-family dispatch flags. Split per family rather than one global
// so architectures with partial kernel coverage (arm64 implements the
// float kernels, not the SQ8 set) reuse the same wrapper code.
var (
	simd64  bool // Dot, SqDist
	simd32  bool // Dot32, SqDist32 (and CosineWithNorms32 through Dot32)
	simdSQ8 bool // DotSQ8, SqDistSQ8
	simdSym bool // DotSQ8Sym
	simdEnc bool // EncodeSQ8 (min/max + quantize passes)

	backendName = "scalar"
)

func init() {
	if os.Getenv("EHNA_NOSIMD") != "" {
		return
	}
	if !cpuHasAVX2() {
		return
	}
	simd64, simd32, simdSQ8, simdSym, simdEnc = true, true, true, true, true
	backendName = "avx2"
}

// Assembly kernels (simd_amd64.s). All of them tolerate any length
// including zero and leave no YMM state behind (VZEROUPPER before
// return); the go:noescape annotations keep callers' slices off the
// heap so the serving paths stay allocation-free.

//go:noescape
func dotSIMD(a, b []float64) float64

//go:noescape
func sqDistSIMD(a, b []float64) float64

//go:noescape
func dot32SIMD(a, b []float32) float64

//go:noescape
func sqDist32SIMD(a, b []float32) float64

// dotSQ8RawSIMD returns the raw Σ q[i]·code[i] sum; the wrapper
// applies the scale/offset affine correction.
//
//go:noescape
func dotSQ8RawSIMD(q []float64, code []int8) float64

//go:noescape
func sqDistSQ8SIMD(q []float64, code []int8, scale, offset float64) float64

// dotSQ8SymRawSIMD returns the raw int32 Σ ac[i]·bc[i] code dot; the
// wrapper applies the affine combination of the two codebooks.
//
//go:noescape
func dotSQ8SymRawSIMD(ac, bc []int8) int32

// minMaxSIMD scans v (len ≥ 1) for its minimum and maximum.
//
//go:noescape
func minMaxSIMD(v []float64) (lo, hi float64)

// quantizeSIMD encodes whole 8-lane blocks of v (len must be a
// multiple of 8): code[i] = roundNearestEven((v[i]-lo)*inv) - 128,
// saturated to int8, returning the sum of the written codes. The
// caller handles the tail lanes and the degenerate-scale case.
//
//go:noescape
func quantizeSIMD(v []float64, code []int8, lo, inv float64) int32
