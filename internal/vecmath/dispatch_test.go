package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestSIMDKernelsMatchScalar is the cross-backend oracle: every
// assembly kernel against its scalar twin, lengths 0–257 so every
// main-block/remainder/tail combination is hit, at three base offsets
// so the loads run both 32-byte-aligned and unaligned (Go only
// guarantees element alignment, the kernels must not care). Each
// family is gated on its own flag, so architectures with partial
// coverage (arm64) still exercise what they have.
func TestSIMDKernelsMatchScalar(t *testing.T) {
	if !simd64 && !simd32 && !simdSQ8 && !simdSym && !simdEnc {
		t.Skip("no SIMD backend active")
	}
	rng := rand.New(rand.NewSource(41))
	relClose := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*(math.Abs(want)+1)
	}
	for n := 0; n <= 257; n++ {
		for _, off := range []int{0, 1, 3} {
			af := make([]float64, off+n)
			bf := make([]float64, off+n)
			a32 := make([]float32, off+n)
			b32 := make([]float32, off+n)
			ac := make([]int8, off+n)
			bc := make([]int8, off+n)
			for i := range af {
				af[i] = rng.NormFloat64()
				bf[i] = rng.NormFloat64()
				a32[i] = float32(rng.NormFloat64())
				b32[i] = float32(rng.NormFloat64())
				ac[i] = int8(rng.Intn(256) - 128)
				bc[i] = int8(rng.Intn(256) - 128)
			}
			a, b := af[off:], bf[off:]
			x, y := a32[off:], b32[off:]
			ca, cb := ac[off:], bc[off:]

			if simd64 {
				if got, want := dotSIMD(a, b), dotScalar(a, b); !relClose(got, want, 1e-12) {
					t.Fatalf("n=%d off=%d dotSIMD=%g scalar=%g", n, off, got, want)
				}
				if got, want := sqDistSIMD(a, b), sqDistScalar(a, b); !relClose(got, want, 1e-12) {
					t.Fatalf("n=%d off=%d sqDistSIMD=%g scalar=%g", n, off, got, want)
				}
			}
			// f32 kernels accumulate in float32 on both sides; allow the
			// documented ~√n·2⁻²⁴ wiggle via a 1e-4 relative band.
			if simd32 {
				if got, want := dot32SIMD(x, y), dot32Scalar(x, y); !relClose(got, want, 1e-4) {
					t.Fatalf("n=%d off=%d dot32SIMD=%g scalar=%g", n, off, got, want)
				}
				if got, want := sqDist32SIMD(x, y), sqDist32Scalar(x, y); !relClose(got, want, 1e-4) {
					t.Fatalf("n=%d off=%d sqDist32SIMD=%g scalar=%g", n, off, got, want)
				}
			}
			if simdSQ8 {
				if got, want := dotSQ8RawSIMD(a, ca), dotSQ8Scalar(a, ca, 1, 0, 0); !relClose(got, want, 1e-12) {
					t.Fatalf("n=%d off=%d dotSQ8RawSIMD=%g scalar=%g", n, off, got, want)
				}
				if got, want := sqDistSQ8SIMD(a, ca, 0.037, -1.25), sqDistSQ8Scalar(a, ca, 0.037, -1.25); !relClose(got, want, 1e-12) {
					t.Fatalf("n=%d off=%d sqDistSQ8SIMD=%g scalar=%g", n, off, got, want)
				}
			}
			// The symmetric code dot is pure integer arithmetic: exact.
			if simdSym {
				var sym int32
				for i := range ca {
					sym += int32(ca[i]) * int32(cb[i])
				}
				if got := dotSQ8SymRawSIMD(ca, cb); got != sym {
					t.Fatalf("n=%d off=%d dotSQ8SymRawSIMD=%d want %d", n, off, got, sym)
				}
			}
			// Min/max is exact too (no arithmetic, only comparisons).
			if simdEnc && n > 0 {
				lo, hi := minMaxSIMD(a)
				wlo, whi := a[0], a[0]
				for _, v := range a[1:] {
					wlo = math.Min(wlo, v)
					whi = math.Max(whi, v)
				}
				if lo != wlo || hi != whi {
					t.Fatalf("n=%d off=%d minMaxSIMD=(%g,%g) want (%g,%g)", n, off, lo, hi, wlo, whi)
				}
			}
		}
	}
}

// TestEncodeSQ8CrossBackend: the SIMD encoder rounds nearest-even
// where the scalar encoder rounds half away from zero, so codes may
// differ by one on exact .5 boundaries — but scale/offset/codeSum must
// stay consistent and every lane must hold the reconstruction bound.
func TestEncodeSQ8CrossBackend(t *testing.T) {
	if !simdEnc {
		t.Skip("SIMD encode backend not active")
	}
	rng := rand.New(rand.NewSource(43))
	for n := simdMinLanes; n <= 257; n++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		simdCode := make([]int8, n)
		sScale, sOffset, sSum := EncodeSQ8(v, simdCode) // SIMD path (len ≥ simdMinLanes)

		scalarCode := make([]int8, n)
		gScale, gOffset, gSum := encodeSQ8ScalarForTest(v, scalarCode)

		if sScale != gScale || sOffset != gOffset {
			t.Fatalf("n=%d scale/offset diverge: simd (%g,%g) scalar (%g,%g)", n, sScale, sOffset, gScale, gOffset)
		}
		var recount int32
		for i := range simdCode {
			d := int(simdCode[i]) - int(scalarCode[i])
			if d < -1 || d > 1 {
				t.Fatalf("n=%d lane %d: simd code %d vs scalar %d (diff > 1)", n, i, simdCode[i], scalarCode[i])
			}
			recount += int32(simdCode[i])
			dec := sOffset + sScale*float64(simdCode[i])
			if math.Abs(dec-v[i]) > sScale/2+1e-9*(math.Abs(sOffset)+256*sScale+1) {
				t.Fatalf("n=%d lane %d: reconstruction %g vs %g exceeds scale/2=%g", n, i, dec, v[i], sScale/2)
			}
		}
		if recount != sSum {
			t.Fatalf("n=%d codeSum %d does not match codes (%d)", n, sSum, recount)
		}
		_ = gSum
	}
}

// encodeSQ8ScalarForTest is EncodeSQ8's scalar body, duplicated here so
// the test can reach it while the dispatch flags route the public entry
// point to SIMD.
func encodeSQ8ScalarForTest(v []float64, code []int8) (scale, offset float64, codeSum int32) {
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	scale = (hi - lo) / 255
	if scale == 0 {
		return 0, lo, 0
	}
	offset = lo + 128*scale
	inv := 1 / scale
	for i, x := range v {
		c := int(math.Round((x-lo)*inv)) - 128
		if c < -128 {
			c = -128
		} else if c > 127 {
			c = 127
		}
		code[i] = int8(c)
		codeSum += int32(c)
	}
	return scale, offset, codeSum
}

// TestDispatchedKernelsZeroAlloc pins the public entry points at zero
// allocations with the SIMD backend active — the go:noescape
// annotations must keep caller slices on the stack. (Runs in every
// configuration; on scalar builds it pins the fallback too.)
func TestDispatchedKernelsZeroAlloc(t *testing.T) {
	a := make([]float64, 128)
	b := make([]float64, 128)
	x := make([]float32, 128)
	y := make([]float32, 128)
	c := make([]int8, 128)
	d := make([]int8, 128)
	for i := range a {
		a[i] = float64(i%7) - 3
		b[i] = float64(i%5) - 2
		x[i] = float32(a[i])
		y[i] = float32(b[i])
		c[i] = int8(i%255 - 127)
		d[i] = int8((i*3)%255 - 127)
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += Dot(a, b)
		sink += SqDist(a, b)
		sink += Dot32(x, y)
		sink += SqDist32(x, y)
		sink += DotSQ8(a, c, 0.1, -0.5, 2)
		sink += SqDistSQ8(a, c, 0.1, -0.5)
		sink += DotSQ8Sym(c, d, 0.1, -0.5, 0.2, 0.3, 5, -7)
		_, _, _ = EncodeSQ8(a, c)
	})
	if allocs != 0 {
		t.Fatalf("dispatched kernels allocated %v times per run", allocs)
	}
	_ = sink
}
