package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// refDot is the naive scalar reference all kernels are checked against.
func refDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func refSquaredL2(v []float64) float64 { return refDot(v, v) }

func refSqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// close12 reports whether got matches want within 1e-12 relative error
// (absolute near zero). Unrolled kernels reassociate float64 sums, so
// exact equality is not expected.
func close12(got, want float64) bool {
	diff := math.Abs(got - want)
	scale := math.Max(math.Abs(got), math.Abs(want))
	if scale < 1 {
		return diff <= 1e-12
	}
	return diff <= 1e-12*scale
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestKernelsMatchReference exercises every kernel against its scalar
// reference across lengths 0–257, covering all unroll remainders (the
// ISSUE's acceptance range).
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 257; n++ {
		a := randVec(rng, n)
		b := randVec(rng, n)

		if got, want := Dot(a, b), refDot(a, b); !close12(got, want) {
			t.Fatalf("Dot n=%d: got %g want %g", n, got, want)
		}
		if got, want := SquaredL2(a), refSquaredL2(a); !close12(got, want) {
			t.Fatalf("SquaredL2 n=%d: got %g want %g", n, got, want)
		}
		if got, want := Norm(a), math.Sqrt(refSquaredL2(a)); !close12(got, want) {
			t.Fatalf("Norm n=%d: got %g want %g", n, got, want)
		}
		if got, want := SqDist(a, b), refSqDist(a, b); !close12(got, want) {
			t.Fatalf("SqDist n=%d: got %g want %g", n, got, want)
		}

		na, nb := Norm(a), Norm(b)
		gotCos := CosineWithNorms(a, b, na, nb)
		var wantCos float64
		if na != 0 && nb != 0 {
			wantCos = refDot(a, b) / (na * nb)
		}
		if !close12(gotCos, wantCos) {
			t.Fatalf("CosineWithNorms n=%d: got %g want %g", n, gotCos, wantCos)
		}

		// Axpy vs reference.
		alpha := rng.NormFloat64()
		dst := append([]float64(nil), a...)
		want := append([]float64(nil), a...)
		Axpy(dst, alpha, b)
		for i := range want {
			want[i] += alpha * b[i]
		}
		assertVecClose(t, "Axpy", n, dst, want)

		// Add.
		dst = append([]float64(nil), a...)
		want = append([]float64(nil), a...)
		Add(dst, b)
		for i := range want {
			want[i] += b[i]
		}
		assertVecClose(t, "Add", n, dst, want)

		// ScaleInPlace.
		dst = append([]float64(nil), a...)
		want = append([]float64(nil), a...)
		ScaleInPlace(dst, alpha)
		for i := range want {
			want[i] *= alpha
		}
		assertVecClose(t, "ScaleInPlace", n, dst, want)

		// Zero.
		dst = append([]float64(nil), a...)
		Zero(dst)
		for i, v := range dst {
			if v != 0 {
				t.Fatalf("Zero n=%d: dst[%d] = %g", n, i, v)
			}
		}

		// Score operators.
		if n > 0 {
			got := make([]float64, n)
			want := make([]float64, n)
			ScoreMean(got, a, b)
			for i := range want {
				want[i] = (a[i] + b[i]) / 2
			}
			assertVecClose(t, "ScoreMean", n, got, want)

			ScoreHadamard(got, a, b)
			for i := range want {
				want[i] = a[i] * b[i]
			}
			assertVecClose(t, "ScoreHadamard", n, got, want)

			ScoreL1(got, a, b)
			for i := range want {
				want[i] = math.Abs(a[i] - b[i])
			}
			assertVecClose(t, "ScoreL1", n, got, want)

			ScoreL2(got, a, b)
			for i := range want {
				d := a[i] - b[i]
				want[i] = d * d
			}
			assertVecClose(t, "ScoreL2", n, got, want)
		}
	}
}

func assertVecClose(t *testing.T, name string, n int, got, want []float64) {
	t.Helper()
	for i := range want {
		if !close12(got[i], want[i]) {
			t.Fatalf("%s n=%d: [%d] got %g want %g", name, n, i, got[i], want[i])
		}
	}
}

// TestSgnsUpdateMatchesReference checks the fused SGNS kernel against
// the three-pass scalar implementation it replaced (skipgram.updateOne
// pre-refactor) across lengths 0–257.
func TestSgnsUpdateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 257; n++ {
		v := randVec(rng, n)
		ctx := randVec(rng, n)
		grad := randVec(rng, n)
		label := float64(rng.Intn(2))
		lr := 0.025

		wantScore := Sigmoid(refDot(v, ctx))
		g := lr * (label - wantScore)
		wantGrad := append([]float64(nil), grad...)
		wantCtx := append([]float64(nil), ctx...)
		for i := range wantCtx {
			wantGrad[i] += g * wantCtx[i]
			wantCtx[i] += g * v[i]
		}

		gotScore := SgnsUpdate(v, ctx, grad, label, lr)
		if !close12(gotScore, wantScore) {
			t.Fatalf("SgnsUpdate n=%d score: got %g want %g", n, gotScore, wantScore)
		}
		assertVecClose(t, "SgnsUpdate grad", n, grad, wantGrad)
		assertVecClose(t, "SgnsUpdate ctx", n, ctx, wantCtx)
	}
}

// TestOptimizerStepsMatchReference checks the fused SGD/Adam kernels
// against their unfused references.
func TestOptimizerStepsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 3, 4, 7, 32, 129, 257} {
		w := randVec(rng, n)
		g := randVec(rng, n)

		wantW := append([]float64(nil), w...)
		const lr, wd = 0.01, 0.001
		for i := range wantW {
			wantW[i] -= lr * (g[i] + wd*wantW[i])
		}
		SgdStep(w, g, lr, wd)
		assertVecClose(t, "SgdStep", n, w, wantW)

		w = randVec(rng, n)
		m := randVec(rng, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Abs(rng.NormFloat64())
		}
		const beta1, beta2, eps = 0.9, 0.999, 1e-8
		c1, c2 := 1-math.Pow(beta1, 3), 1-math.Pow(beta2, 3)
		wantW = append([]float64(nil), w...)
		wantM := append([]float64(nil), m...)
		wantV := append([]float64(nil), v...)
		for i := range wantW {
			wantM[i] = beta1*wantM[i] + (1-beta1)*g[i]
			wantV[i] = beta2*wantV[i] + (1-beta2)*g[i]*g[i]
			wantW[i] -= lr * (wantM[i] / c1) / (math.Sqrt(wantV[i]/c2) + eps)
		}
		AdamStep(w, m, v, g, lr, beta1, beta2, eps, c1, c2)
		assertVecClose(t, "AdamStep w", n, w, wantW)
		assertVecClose(t, "AdamStep m", n, m, wantM)
		assertVecClose(t, "AdamStep v", n, v, wantV)
	}
}

func TestSigmoidStable(t *testing.T) {
	for _, x := range []float64{-1000, -10, 0, 10, 1000} {
		s := Sigmoid(x)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("Sigmoid(%g) = %g", x, s)
		}
	}
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %g", got)
	}
}

// TestKernelsZeroAlloc asserts that every kernel is allocation-free.
func TestKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randVec(rng, 131)
	b := randVec(rng, 131)
	dst := make([]float64, 131)
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += Dot(a, b)
		sink += SquaredL2(a)
		sink += Norm(b)
		sink += SqDist(a, b)
		sink += CosineWithNorms(a, b, 1, 1)
		Axpy(dst, 0.5, a)
		Add(dst, b)
		ScaleInPlace(dst, 0.99)
		ScoreMean(dst, a, b)
		ScoreHadamard(dst, a, b)
		ScoreL1(dst, a, b)
		ScoreL2(dst, a, b)
		sink += SgnsUpdate(a, dst, b, 1, 0.01)
	})
	if allocs != 0 {
		t.Fatalf("kernels allocated %v times per run", allocs)
	}
	_ = sink
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot(make([]float64, 3), make([]float64, 4))
}
