// Int8 scalar quantization (SQ8): the narrowest lane of the compressed
// vector plane. Each vector is encoded independently against its own
// [min, max] range into one int8 code per lane plus a per-vector
// {scale, offset} pair, so a distance computation moves 1 byte per
// lane — an 8× cut over float64 — at the price of a bounded, per-
// vector reconstruction error of at most scale/2 per lane.
//
// Two distance kernels cover the two stages of a quantized search:
//
//   - DotSQ8Sym is the symmetric kernel — both operands quantized —
//     whose inner loop is a pure int8×int8 integer dot. It is the
//     cheapest possible scan and drives candidate generation.
//   - DotSQ8 / SqDistSQ8 are the asymmetric kernels — quantized stored
//     vector against the full-precision query — used to re-rank the
//     survivors, so the final ordering only carries the stored
//     vectors' quantization error, not the query's.
//
// Error envelopes (asserted in sq8_test.go and fuzzed in fuzz_test.go):
// reconstruction |v̂ᵢ−vᵢ| ≤ scale/2 per lane, and |DotSQ8(q,v̂) −
// Dot(q,v)| ≤ (scale/2)·‖q‖₁ (up to float rounding), since the
// asymmetric kernel computes an exact dot against the reconstruction.
//
// Kernels assume finite inputs; encoding magnitudes near ±MaxFloat64
// can overflow the range computation (the serving plane stores trained
// embeddings, orders of magnitude below that).
package vecmath

import "math"

// i8f maps the uint8 reinterpretation of an int8 code to its float64
// value. The asymmetric kernels' inner loops fetch lane values from
// this 2KB L1-resident table instead of paying a sign-extend plus
// int→float convert per lane — measurably faster on scalar cores,
// where the convert is the longest op in the loop.
var i8f [256]float64

func init() {
	for i := range i8f {
		i8f[i] = float64(int8(uint8(i)))
	}
}

// EncodeSQ8 quantizes v into one int8 per lane: scale = (max−min)/255,
// codeᵢ = round((vᵢ−min)/scale) − 128, and decode is v̂ᵢ = offset +
// scale·codeᵢ with offset = min + 128·scale. Returns the decode
// parameters and Σcodeᵢ (the precomputed term DotSQ8Sym's affine
// correction needs). Constant (and empty) vectors encode as scale 0,
// offset = v₀, all-zero codes — reconstruction is then exact. code
// must have len(v).
func EncodeSQ8(v []float64, code []int8) (scale, offset float64, codeSum int32) {
	if len(code) != len(v) {
		panic("vecmath: EncodeSQ8 length mismatch")
	}
	if len(v) == 0 {
		return 0, 0, 0
	}
	useSIMD := simdEnc && len(v) >= simdMinLanes
	var lo, hi float64
	if useSIMD {
		lo, hi = minMaxSIMD(v)
	} else {
		lo, hi = v[0], v[0]
		for _, x := range v[1:] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	scale = (hi - lo) / 255
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		// Constant vector, or a degenerate range the codes cannot
		// represent: store the midpoint exactly-ish and quantize nothing.
		for i := range code {
			code[i] = 0
		}
		return 0, lo, 0
	}
	offset = lo + 128*scale
	inv := 1 / scale
	if useSIMD {
		// The vector path rounds nearest-even (the CPU default); the
		// tail lanes use RoundToEven to match. Scalar EncodeSQ8 rounds
		// half away from zero — the two differ by at most one code on
		// exact .5 boundaries, both within the scale/2 envelope.
		n := len(v) &^ 7
		codeSum = quantizeSIMD(v[:n], code[:n], lo, inv)
		for i := n; i < len(v); i++ {
			c := int(math.RoundToEven((v[i]-lo)*inv)) - 128
			if c < -128 {
				c = -128
			} else if c > 127 {
				c = 127
			}
			code[i] = int8(c)
			codeSum += int32(c)
		}
		return scale, offset, codeSum
	}
	for i, x := range v {
		c := int(math.Round((x-lo)*inv)) - 128
		if c < -128 {
			c = -128
		} else if c > 127 {
			c = 127
		}
		code[i] = int8(c)
		codeSum += int32(c)
	}
	return scale, offset, codeSum
}

// DecodeSQ8 reconstructs v̂ᵢ = offset + scale·codeᵢ into dst, which
// must have len(code).
func DecodeSQ8(dst []float64, code []int8, scale, offset float64) {
	if len(dst) != len(code) {
		panic("vecmath: DecodeSQ8 length mismatch")
	}
	code = code[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = offset + scale*float64(code[i])
		dst[i+1] = offset + scale*float64(code[i+1])
		dst[i+2] = offset + scale*float64(code[i+2])
		dst[i+3] = offset + scale*float64(code[i+3])
	}
	for i := n; i < len(dst); i++ {
		dst[i] = offset + scale*float64(code[i])
	}
}

// DotSQ8 is the asymmetric dot product: the full-precision query q
// against an SQ8-encoded stored vector. It computes Dot(q, v̂) exactly
// (up to float rounding) via
//
//	Dot(q, v̂) = scale·Σ qᵢ·codeᵢ + offset·Σ qᵢ
//
// so callers pass qSum = Sum(q), computed once per query; the per-
// candidate loop then reads 1 byte per lane of the candidate.
func DotSQ8(q []float64, code []int8, scale, offset, qSum float64) float64 {
	if len(q) != len(code) {
		panic("vecmath: DotSQ8 length mismatch")
	}
	if simdSQ8 && len(q) >= simdMinLanes {
		return scale*dotSQ8RawSIMD(q, code) + offset*qSum
	}
	return dotSQ8Scalar(q, code, scale, offset, qSum)
}

func dotSQ8Scalar(q []float64, code []int8, scale, offset, qSum float64) float64 {
	code = code[:len(q)]
	var s0, s1, s2, s3 float64
	n := len(q) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += q[i] * i8f[uint8(code[i])]
		s1 += q[i+1] * i8f[uint8(code[i+1])]
		s2 += q[i+2] * i8f[uint8(code[i+2])]
		s3 += q[i+3] * i8f[uint8(code[i+3])]
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(q); i++ {
		s += q[i] * i8f[uint8(code[i])]
	}
	return scale*s + offset*qSum
}

// SqDistSQ8 is the asymmetric squared Euclidean distance ‖q − v̂‖²:
// each lane reconstructs the stored value in a register and squares
// the difference against the full-precision query.
func SqDistSQ8(q []float64, code []int8, scale, offset float64) float64 {
	if len(q) != len(code) {
		panic("vecmath: SqDistSQ8 length mismatch")
	}
	if simdSQ8 && len(q) >= simdMinLanes {
		return sqDistSQ8SIMD(q, code, scale, offset)
	}
	return sqDistSQ8Scalar(q, code, scale, offset)
}

func sqDistSQ8Scalar(q []float64, code []int8, scale, offset float64) float64 {
	code = code[:len(q)]
	var s0, s1, s2, s3 float64
	n := len(q) &^ 3
	for i := 0; i < n; i += 4 {
		d0 := q[i] - (offset + scale*i8f[uint8(code[i])])
		d1 := q[i+1] - (offset + scale*i8f[uint8(code[i+1])])
		d2 := q[i+2] - (offset + scale*i8f[uint8(code[i+2])])
		d3 := q[i+3] - (offset + scale*i8f[uint8(code[i+3])])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(q); i++ {
		d := q[i] - (offset + scale*i8f[uint8(code[i])])
		s += d * d
	}
	return s
}

// DotSQ8Sym is the symmetric dot product between two SQ8-encoded
// vectors: with â = aOff + aScale·ac and b̂ = bOff + bScale·bc,
//
//	Dot(â, b̂) = n·aOff·bOff + aOff·bScale·Σbc + bOff·aScale·Σac
//	          + aScale·bScale·Σ acᵢ·bcᵢ
//
// where the code sums come precomputed from EncodeSQ8, so the inner
// loop is a pure int8×int8 integer dot — 2 bytes moved per lane and no
// float conversions. This is the candidate-generation kernel; the int32
// accumulators are safe for dimensions up to 2³¹/(4·128²) ≈ 32k lanes
// per accumulator (≈131k total), far above any embedding width here.
func DotSQ8Sym(ac, bc []int8, aScale, aOffset, bScale, bOffset float64, aSum, bSum int32) float64 {
	s := DotSQ8SymCodes(ac, bc)
	return float64(len(ac))*aOffset*bOffset +
		aOffset*bScale*float64(bSum) +
		bOffset*aScale*float64(aSum) +
		aScale*bScale*float64(s)
}

// DotSQ8SymCodes is the integer core of DotSQ8Sym: Σ acᵢ·bcᵢ over the
// raw int8 codes, leaving the affine correction to the caller. The
// HNSW beam scores through this directly so the correction's
// query-side terms hoist out of its per-candidate loop and the
// wrapper call chain stays out of the hot path.
func DotSQ8SymCodes(ac, bc []int8) int32 {
	if len(ac) != len(bc) {
		panic("vecmath: DotSQ8Sym length mismatch")
	}
	if simdSym && len(ac) >= simdMinLanes {
		return dotSQ8SymRawSIMD(ac, bc)
	}
	bc = bc[:len(ac)]
	var s0, s1, s2, s3 int32
	n := len(ac) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += int32(ac[i]) * int32(bc[i])
		s1 += int32(ac[i+1]) * int32(bc[i+1])
		s2 += int32(ac[i+2]) * int32(bc[i+2])
		s3 += int32(ac[i+3]) * int32(bc[i+3])
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(ac); i++ {
		s += int32(ac[i]) * int32(bc[i])
	}
	return s
}
