//go:build !noasm

#include "textflag.h"

// NEON kernels for the float families. The Go arm64 assembler exposes
// no float vector ADD/SUB mnemonics, but FMLA/FMLS with a broadcast
// 1.0 multiplier compute the same single-rounded result (1·x is
// exact), so vector adds ride VFMLA against V31 = {1.0, …} and the
// a−b subtraction in SqDist rides VFMLS the same way.
//
// Layout mirrors simd_amd64.s: an 8-lane (f64) / 16-lane (f32) main
// loop over four accumulators, lane-extraction reduction, then a
// scalar FMOVD.P/FMOVS.P tail loop that dims 32/64/128 never enter.

// func dotSIMD(a, b []float64) float64
TEXT ·dotSIMD(SB), NOSPLIT, $0-56
	MOVD a_base+0(FP), R0
	MOVD a_len+8(FP), R2
	MOVD b_base+24(FP), R1
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	LSR  $3, R2, R3
	CBZ  R3, dot_reduce

dot_blk8:
	VLD1.P 64(R0), [V4.D2, V5.D2, V6.D2, V7.D2]
	VLD1.P 64(R1), [V8.D2, V9.D2, V10.D2, V11.D2]
	VFMLA  V8.D2, V4.D2, V0.D2
	VFMLA  V9.D2, V5.D2, V1.D2
	VFMLA  V10.D2, V6.D2, V2.D2
	VFMLA  V11.D2, V7.D2, V3.D2
	SUB    $1, R3, R3
	CBNZ   R3, dot_blk8

dot_reduce:
	FMOVD $1.0, F31
	VDUP  V31.D[0], V31.D2
	VFMLA V1.D2, V31.D2, V0.D2
	VFMLA V3.D2, V31.D2, V2.D2
	VFMLA V2.D2, V31.D2, V0.D2
	VMOV  V0.D[1], V16.D[0]
	FADDD F16, F0, F0
	AND   $7, R2, R2
	CBZ   R2, dot_done

dot_tail:
	FMOVD.P 8(R0), F2
	FMOVD.P 8(R1), F3
	FMADDD  F2, F0, F3, F0
	SUB     $1, R2, R2
	CBNZ    R2, dot_tail

dot_done:
	FMOVD F0, ret+48(FP)
	RET

// func sqDistSIMD(a, b []float64) float64
TEXT ·sqDistSIMD(SB), NOSPLIT, $0-56
	MOVD  a_base+0(FP), R0
	MOVD  a_len+8(FP), R2
	MOVD  b_base+24(FP), R1
	VEOR  V0.B16, V0.B16, V0.B16
	VEOR  V1.B16, V1.B16, V1.B16
	VEOR  V2.B16, V2.B16, V2.B16
	VEOR  V3.B16, V3.B16, V3.B16
	FMOVD $1.0, F31
	VDUP  V31.D[0], V31.D2
	LSR   $3, R2, R3
	CBZ   R3, sqd_reduce

sqd_blk8:
	VLD1.P 64(R0), [V4.D2, V5.D2, V6.D2, V7.D2]
	VLD1.P 64(R1), [V8.D2, V9.D2, V10.D2, V11.D2]
	VFMLS  V8.D2, V31.D2, V4.D2
	VFMLS  V9.D2, V31.D2, V5.D2
	VFMLS  V10.D2, V31.D2, V6.D2
	VFMLS  V11.D2, V31.D2, V7.D2
	VFMLA  V4.D2, V4.D2, V0.D2
	VFMLA  V5.D2, V5.D2, V1.D2
	VFMLA  V6.D2, V6.D2, V2.D2
	VFMLA  V7.D2, V7.D2, V3.D2
	SUB    $1, R3, R3
	CBNZ   R3, sqd_blk8

sqd_reduce:
	VFMLA V1.D2, V31.D2, V0.D2
	VFMLA V3.D2, V31.D2, V2.D2
	VFMLA V2.D2, V31.D2, V0.D2
	VMOV  V0.D[1], V16.D[0]
	FADDD F16, F0, F0
	AND   $7, R2, R2
	CBZ   R2, sqd_done

sqd_tail:
	FMOVD.P 8(R0), F2
	FMOVD.P 8(R1), F3
	FSUBD   F3, F2, F2
	FMADDD  F2, F0, F2, F0
	SUB     $1, R2, R2
	CBNZ    R2, sqd_tail

sqd_done:
	FMOVD F0, ret+48(FP)
	RET

// func dot32SIMD(a, b []float32) float64
TEXT ·dot32SIMD(SB), NOSPLIT, $0-56
	MOVD a_base+0(FP), R0
	MOVD a_len+8(FP), R2
	MOVD b_base+24(FP), R1
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	LSR  $4, R2, R3
	CBZ  R3, d32_reduce

d32_blk16:
	VLD1.P 64(R0), [V4.S4, V5.S4, V6.S4, V7.S4]
	VLD1.P 64(R1), [V8.S4, V9.S4, V10.S4, V11.S4]
	VFMLA  V8.S4, V4.S4, V0.S4
	VFMLA  V9.S4, V5.S4, V1.S4
	VFMLA  V10.S4, V6.S4, V2.S4
	VFMLA  V11.S4, V7.S4, V3.S4
	SUB    $1, R3, R3
	CBNZ   R3, d32_blk16

d32_reduce:
	FMOVS $1.0, F31
	VDUP  V31.S[0], V31.S4
	VFMLA V1.S4, V31.S4, V0.S4
	VFMLA V3.S4, V31.S4, V2.S4
	VFMLA V2.S4, V31.S4, V0.S4
	VMOV  V0.S[1], V16.S[0]
	VMOV  V0.S[2], V17.S[0]
	VMOV  V0.S[3], V18.S[0]
	FADDS F16, F0, F0
	FADDS F18, F17, F17
	FADDS F17, F0, F0
	AND   $15, R2, R2
	CBZ   R2, d32_cvt

d32_tail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FMADDS  F2, F0, F3, F0
	SUB     $1, R2, R2
	CBNZ    R2, d32_tail

d32_cvt:
	FCVTSD F0, F0
	FMOVD  F0, ret+48(FP)
	RET

// func sqDist32SIMD(a, b []float32) float64
TEXT ·sqDist32SIMD(SB), NOSPLIT, $0-56
	MOVD  a_base+0(FP), R0
	MOVD  a_len+8(FP), R2
	MOVD  b_base+24(FP), R1
	VEOR  V0.B16, V0.B16, V0.B16
	VEOR  V1.B16, V1.B16, V1.B16
	VEOR  V2.B16, V2.B16, V2.B16
	VEOR  V3.B16, V3.B16, V3.B16
	FMOVS $1.0, F31
	VDUP  V31.S[0], V31.S4
	LSR   $4, R2, R3
	CBZ   R3, s32_reduce

s32_blk16:
	VLD1.P 64(R0), [V4.S4, V5.S4, V6.S4, V7.S4]
	VLD1.P 64(R1), [V8.S4, V9.S4, V10.S4, V11.S4]
	VFMLS  V8.S4, V31.S4, V4.S4
	VFMLS  V9.S4, V31.S4, V5.S4
	VFMLS  V10.S4, V31.S4, V6.S4
	VFMLS  V11.S4, V31.S4, V7.S4
	VFMLA  V4.S4, V4.S4, V0.S4
	VFMLA  V5.S4, V5.S4, V1.S4
	VFMLA  V6.S4, V6.S4, V2.S4
	VFMLA  V7.S4, V7.S4, V3.S4
	SUB    $1, R3, R3
	CBNZ   R3, s32_blk16

s32_reduce:
	VFMLA V1.S4, V31.S4, V0.S4
	VFMLA V3.S4, V31.S4, V2.S4
	VFMLA V2.S4, V31.S4, V0.S4
	VMOV  V0.S[1], V16.S[0]
	VMOV  V0.S[2], V17.S[0]
	VMOV  V0.S[3], V18.S[0]
	FADDS F16, F0, F0
	FADDS F18, F17, F17
	FADDS F17, F0, F0
	AND   $15, R2, R2
	CBZ   R2, s32_cvt

s32_tail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FSUBS   F3, F2, F2
	FMADDS  F2, F0, F2, F0
	SUB     $1, R2, R2
	CBNZ    R2, s32_tail

s32_cvt:
	FCVTSD F0, F0
	FMOVD  F0, ret+48(FP)
	RET
