// Float32 kernel family: the half-width lane of the compressed vector
// plane. An embstore at Precision F32 keeps its slabs as []float32, so
// every distance computation moves 4 bytes per lane instead of 8 — at
// serving scale the scans are memory-bandwidth-bound, and halving the
// bytes moved is close to halving the scan time once the store
// outgrows cache.
//
// The kernels mirror their float64 siblings: allocation-free, 4-way
// unrolled with independent accumulators, panicking on length
// mismatch. Accumulation runs in float32 (the unrolled accumulators
// keep the error ~√(n)·2⁻²⁴ relative, asserted against the float64
// references in vecmath_test.go); results are returned widened to
// float64 so callers mix precisions without sprinkling conversions.
package vecmath

// Dot32 returns the inner product Σ a[i]·b[i] over float32 lanes.
func Dot32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot32 length mismatch")
	}
	if simd32 && len(a) >= simdMinLanes {
		return dot32SIMD(a, b)
	}
	return dot32Scalar(a, b)
}

func dot32Scalar(a, b []float32) float64 {
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float32
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return float64(s)
}

// SqDist32 returns the squared Euclidean distance ‖a−b‖² over float32
// lanes.
func SqDist32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: SqDist32 length mismatch")
	}
	if simd32 && len(a) >= simdMinLanes {
		return sqDist32SIMD(a, b)
	}
	return sqDist32Scalar(a, b)
}

func sqDist32Scalar(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return float64(s)
}

// CosineWithNorms32 returns the cosine similarity of a and b over
// float32 lanes, given precomputed (full-precision) L2 norms — the
// float32 sibling of CosineWithNorms. 0 when either norm is 0.
func CosineWithNorms32(a, b []float32, aNorm, bNorm float64) float64 {
	if aNorm == 0 || bNorm == 0 {
		return 0
	}
	return Dot32(a, b) / (aNorm * bNorm)
}

// F64To32 narrows src into dst lane by lane — the conversion kernel a
// query takes once so the per-candidate loop can stay all-float32.
// Lengths must match.
func F64To32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("vecmath: F64To32 length mismatch")
	}
	src = src[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = float32(src[i])
		dst[i+1] = float32(src[i+1])
		dst[i+2] = float32(src[i+2])
		dst[i+3] = float32(src[i+3])
	}
	for i := n; i < len(dst); i++ {
		dst[i] = float32(src[i])
	}
}

// F32To64 widens src into dst lane by lane (exact — every float32 is
// representable as a float64). Lengths must match.
func F32To64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("vecmath: F32To64 length mismatch")
	}
	src = src[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = float64(src[i])
		dst[i+1] = float64(src[i+1])
		dst[i+2] = float64(src[i+2])
		dst[i+3] = float64(src[i+3])
	}
	for i := n; i < len(dst); i++ {
		dst[i] = float64(src[i])
	}
}

// Sum returns Σ v[i]. Queries against SQ8 stores compute their lane
// sum once and thread it through DotSQ8's affine correction term.
func Sum(v []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += v[i]
		s1 += v[i+1]
		s2 += v[i+2]
		s3 += v[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(v); i++ {
		s += v[i]
	}
	return s
}
