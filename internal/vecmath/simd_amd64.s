//go:build !noasm

#include "textflag.h"

// AVX2+FMA kernels. Shared structure:
//
//   - wide main loop (16 f64 / 32 f32 / 16–32 int8 lanes per
//     iteration) over independent accumulators to hide FMA latency;
//   - a narrower vector loop for the mid-size remainder;
//   - horizontal reduction, VZEROUPPER, then a plain SSE scalar loop
//     for the last few lanes.
//
// Dimensions that are a multiple of the main block — the serving
// sweet spots 32, 64 and 128 — fall straight through both remainder
// loops on a single masked test each, so they never execute tail code.
// All loads are unaligned (VMOVUPD/VMOVUPS/VMOVDQU); Go slices only
// guarantee element alignment.

// func dotSIMD(a, b []float64) float64
TEXT ·dotSIMD(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   a_len+8(FP), CX
	MOVQ   b_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   CX, AX
	SHRQ   $4, AX
	JZ     dot_blk4

dot_blk16:
	VMOVUPD     (SI), Y4
	VMOVUPD     32(SI), Y5
	VMOVUPD     64(SI), Y6
	VMOVUPD     96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        AX
	JNZ         dot_blk16

dot_blk4:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	MOVQ   CX, AX
	ANDQ   $15, AX
	SHRQ   $2, AX
	JZ     dot_reduce

dot_blk4_loop:
	VMOVUPD     (SI), Y4
	VFMADD231PD (DI), Y4, Y0
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        AX
	JNZ         dot_blk4_loop

dot_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0
	VZEROUPPER
	ANDQ         $3, CX
	JZ           dot_done

dot_tail:
	MOVSD (SI), X2
	MULSD (DI), X2
	ADDSD X2, X0
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   dot_tail

dot_done:
	MOVSD X0, ret+48(FP)
	RET

// func sqDistSIMD(a, b []float64) float64
TEXT ·sqDistSIMD(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   a_len+8(FP), CX
	MOVQ   b_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   CX, AX
	SHRQ   $4, AX
	JZ     sqd_blk4

sqd_blk16:
	VMOVUPD     (SI), Y4
	VMOVUPD     32(SI), Y5
	VMOVUPD     64(SI), Y6
	VMOVUPD     96(SI), Y7
	VSUBPD      (DI), Y4, Y4
	VSUBPD      32(DI), Y5, Y5
	VSUBPD      64(DI), Y6, Y6
	VSUBPD      96(DI), Y7, Y7
	VFMADD231PD Y4, Y4, Y0
	VFMADD231PD Y5, Y5, Y1
	VFMADD231PD Y6, Y6, Y2
	VFMADD231PD Y7, Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        AX
	JNZ         sqd_blk16

sqd_blk4:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	MOVQ   CX, AX
	ANDQ   $15, AX
	SHRQ   $2, AX
	JZ     sqd_reduce

sqd_blk4_loop:
	VMOVUPD     (SI), Y4
	VSUBPD      (DI), Y4, Y4
	VFMADD231PD Y4, Y4, Y0
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        AX
	JNZ         sqd_blk4_loop

sqd_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0
	VZEROUPPER
	ANDQ         $3, CX
	JZ           sqd_done

sqd_tail:
	MOVSD (SI), X2
	SUBSD (DI), X2
	MULSD X2, X2
	ADDSD X2, X0
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   sqd_tail

sqd_done:
	MOVSD X0, ret+48(FP)
	RET

// func dot32SIMD(a, b []float32) float64
TEXT ·dot32SIMD(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   a_len+8(FP), CX
	MOVQ   b_base+24(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   CX, AX
	SHRQ   $5, AX
	JZ     d32_blk8

d32_blk32:
	VMOVUPS     (SI), Y4
	VMOVUPS     32(SI), Y5
	VMOVUPS     64(SI), Y6
	VMOVUPS     96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        AX
	JNZ         d32_blk32

d32_blk8:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	MOVQ   CX, AX
	ANDQ   $31, AX
	SHRQ   $3, AX
	JZ     d32_reduce

d32_blk8_loop:
	VMOVUPS     (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        AX
	JNZ         d32_blk8_loop

d32_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VPERMILPS    $0x4E, X0, X1
	VADDPS       X1, X0, X0
	VPERMILPS    $0xB1, X0, X1
	VADDPS       X1, X0, X0
	VZEROUPPER
	ANDQ         $7, CX
	JZ           d32_cvt

d32_tail:
	MOVSS (SI), X2
	MULSS (DI), X2
	ADDSS X2, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   d32_tail

d32_cvt:
	CVTSS2SD X0, X0
	MOVSD    X0, ret+48(FP)
	RET

// func sqDist32SIMD(a, b []float32) float64
TEXT ·sqDist32SIMD(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   a_len+8(FP), CX
	MOVQ   b_base+24(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   CX, AX
	SHRQ   $5, AX
	JZ     s32_blk8

s32_blk32:
	VMOVUPS     (SI), Y4
	VMOVUPS     32(SI), Y5
	VMOVUPS     64(SI), Y6
	VMOVUPS     96(SI), Y7
	VSUBPS      (DI), Y4, Y4
	VSUBPS      32(DI), Y5, Y5
	VSUBPS      64(DI), Y6, Y6
	VSUBPS      96(DI), Y7, Y7
	VFMADD231PS Y4, Y4, Y0
	VFMADD231PS Y5, Y5, Y1
	VFMADD231PS Y6, Y6, Y2
	VFMADD231PS Y7, Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        AX
	JNZ         s32_blk32

s32_blk8:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	MOVQ   CX, AX
	ANDQ   $31, AX
	SHRQ   $3, AX
	JZ     s32_reduce

s32_blk8_loop:
	VMOVUPS     (SI), Y4
	VSUBPS      (DI), Y4, Y4
	VFMADD231PS Y4, Y4, Y0
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        AX
	JNZ         s32_blk8_loop

s32_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VPERMILPS    $0x4E, X0, X1
	VADDPS       X1, X0, X0
	VPERMILPS    $0xB1, X0, X1
	VADDPS       X1, X0, X0
	VZEROUPPER
	ANDQ         $7, CX
	JZ           s32_cvt

s32_tail:
	MOVSS (SI), X2
	SUBSS (DI), X2
	MULSS X2, X2
	ADDSS X2, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   s32_tail

s32_cvt:
	CVTSS2SD X0, X0
	MOVSD    X0, ret+48(FP)
	RET

// func dotSQ8RawSIMD(q []float64, code []int8) float64
//
// Raw Σ q[i]·code[i]: sign-extend 16 codes to int32, convert to f64,
// FMA against the query. The affine (scale/offset) correction happens
// in the Go wrapper.
TEXT ·dotSQ8RawSIMD(SB), NOSPLIT, $0-56
	MOVQ   q_base+0(FP), SI
	MOVQ   q_len+8(FP), CX
	MOVQ   code_base+24(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   CX, AX
	SHRQ   $4, AX
	JZ     dq8_blk8

dq8_blk16:
	VMOVDQU      (DX), X4
	VPSRLDQ      $8, X4, X6
	VPMOVSXBD    X4, Y5
	VPMOVSXBD    X6, Y7
	VCVTDQ2PD    X5, Y8
	VEXTRACTI128 $1, Y5, X9
	VCVTDQ2PD    X9, Y10
	VCVTDQ2PD    X7, Y11
	VEXTRACTI128 $1, Y7, X12
	VCVTDQ2PD    X12, Y13
	VFMADD231PD  (SI), Y8, Y0
	VFMADD231PD  32(SI), Y10, Y1
	VFMADD231PD  64(SI), Y11, Y2
	VFMADD231PD  96(SI), Y13, Y3
	ADDQ         $16, DX
	ADDQ         $128, SI
	DECQ         AX
	JNZ          dq8_blk16

dq8_blk8:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	MOVQ   CX, AX
	ANDQ   $15, AX
	SHRQ   $3, AX
	JZ     dq8_reduce

	VMOVQ        (DX), X4
	VPMOVSXBD    X4, Y5
	VCVTDQ2PD    X5, Y8
	VEXTRACTI128 $1, Y5, X9
	VCVTDQ2PD    X9, Y10
	VFMADD231PD  (SI), Y8, Y0
	VFMADD231PD  32(SI), Y10, Y0
	ADDQ         $8, DX
	ADDQ         $64, SI

dq8_reduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0
	VZEROUPPER
	ANDQ         $7, CX
	JZ           dq8_done

dq8_tail:
	MOVBQSX  (DX), AX
	CVTSQ2SD AX, X2
	MULSD    (SI), X2
	ADDSD    X2, X0
	INCQ     DX
	ADDQ     $8, SI
	DECQ     CX
	JNZ      dq8_tail

dq8_done:
	MOVSD X0, ret+48(FP)
	RET

// func sqDistSQ8SIMD(q []float64, code []int8, scale, offset float64) float64
//
// Dequantizes with separate multiply+add (t = offset + scale·c, the
// exact arithmetic DecodeSQ8 uses — no FMA here, so the result tracks
// the scalar kernel bit-for-bit up to summation order), then
// accumulates (q-t)² with FMA.
TEXT ·sqDistSQ8SIMD(SB), NOSPLIT, $0-72
	MOVQ         q_base+0(FP), SI
	MOVQ         q_len+8(FP), CX
	MOVQ         code_base+24(FP), DX
	VBROADCASTSD scale+48(FP), Y14
	VBROADCASTSD offset+56(FP), Y15
	VXORPD       Y0, Y0, Y0
	VXORPD       Y1, Y1, Y1
	MOVQ         CX, AX
	SHRQ         $3, AX
	JZ           ssq8_reduce

ssq8_blk8:
	VMOVQ        (DX), X4
	VPMOVSXBD    X4, Y5
	VCVTDQ2PD    X5, Y8
	VEXTRACTI128 $1, Y5, X9
	VCVTDQ2PD    X9, Y10
	VMULPD       Y14, Y8, Y8
	VADDPD       Y15, Y8, Y8
	VMULPD       Y14, Y10, Y10
	VADDPD       Y15, Y10, Y10
	VMOVUPD      (SI), Y6
	VMOVUPD      32(SI), Y7
	VSUBPD       Y8, Y6, Y6
	VSUBPD       Y10, Y7, Y7
	VFMADD231PD  Y6, Y6, Y0
	VFMADD231PD  Y7, Y7, Y1
	ADDQ         $8, DX
	ADDQ         $64, SI
	DECQ         AX
	JNZ          ssq8_blk8

ssq8_reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0
	VZEROUPPER
	ANDQ         $7, CX
	JZ           ssq8_done
	MOVSD        scale+48(FP), X4
	MOVSD        offset+56(FP), X5

ssq8_tail:
	MOVBQSX  (DX), AX
	CVTSQ2SD AX, X2
	MULSD    X4, X2
	ADDSD    X5, X2
	MOVSD    (SI), X3
	SUBSD    X2, X3
	MULSD    X3, X3
	ADDSD    X3, X0
	INCQ     DX
	ADDQ     $8, SI
	DECQ     CX
	JNZ      ssq8_tail

ssq8_done:
	MOVSD X0, ret+64(FP)
	RET

// func dotSQ8SymRawSIMD(ac, bc []int8) int32
//
// Raw int8×int8 code dot: widen to int16, VPMADDWD pairs into int32,
// accumulate. Products are ≤ 128², so each int32 lane absorbs two
// products per iteration — safe far beyond the 131k-lane bound
// DotSQ8Sym documents.
TEXT ·dotSQ8SymRawSIMD(SB), NOSPLIT, $0-52
	MOVQ  ac_base+0(FP), SI
	MOVQ  ac_len+8(FP), CX
	MOVQ  bc_base+24(FP), DI
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	MOVQ  CX, AX
	SHRQ  $5, AX
	JZ    sym_blk16

sym_blk32:
	VMOVDQU   (SI), X4
	VMOVDQU   16(SI), X5
	VMOVDQU   (DI), X6
	VMOVDQU   16(DI), X7
	VPMOVSXBW X4, Y4
	VPMOVSXBW X5, Y5
	VPMOVSXBW X6, Y6
	VPMOVSXBW X7, Y7
	VPMADDWD  Y6, Y4, Y4
	VPMADDWD  Y7, Y5, Y5
	VPADDD    Y4, Y0, Y0
	VPADDD    Y5, Y1, Y1
	ADDQ      $32, SI
	ADDQ      $32, DI
	DECQ      AX
	JNZ       sym_blk32

sym_blk16:
	MOVQ CX, AX
	ANDQ $31, AX
	SHRQ $4, AX
	JZ   sym_reduce

	VMOVDQU   (SI), X4
	VMOVDQU   (DI), X6
	VPMOVSXBW X4, Y4
	VPMOVSXBW X6, Y6
	VPMADDWD  Y6, Y4, Y4
	VPADDD    Y4, Y0, Y0
	ADDQ      $16, SI
	ADDQ      $16, DI

sym_reduce:
	VPADDD       Y1, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, BX
	VZEROUPPER
	ANDQ         $15, CX
	JZ           sym_done

sym_tail:
	MOVBQSX (SI), AX
	MOVBQSX (DI), DX
	IMULQ   DX, AX
	ADDQ    AX, BX
	INCQ    SI
	INCQ    DI
	DECQ    CX
	JNZ     sym_tail

sym_done:
	MOVL BX, ret+48(FP)
	RET

// func minMaxSIMD(v []float64) (lo, hi float64)
//
// Requires len ≥ 1 (the EncodeSQ8 wrapper guarantees it). Seeds both
// accumulators with a broadcast of v[0]; re-scanning lane 0 in the
// main loop is harmless for min/max.
TEXT ·minMaxSIMD(SB), NOSPLIT, $0-40
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	VBROADCASTSD (SI), Y0
	VMOVAPD      Y0, Y1
	MOVQ         CX, AX
	SHRQ         $3, AX
	JZ           mm_reduce

mm_blk8:
	VMOVUPD (SI), Y2
	VMOVUPD 32(SI), Y3
	VMINPD  Y2, Y0, Y0
	VMAXPD  Y2, Y1, Y1
	VMINPD  Y3, Y0, Y0
	VMAXPD  Y3, Y1, Y1
	ADDQ    $64, SI
	DECQ    AX
	JNZ     mm_blk8

mm_reduce:
	VEXTRACTF128 $1, Y0, X2
	VMINPD       X2, X0, X0
	VPERMILPD    $1, X0, X2
	VMINSD       X2, X0, X0
	VEXTRACTF128 $1, Y1, X3
	VMAXPD       X3, X1, X1
	VPERMILPD    $1, X1, X3
	VMAXSD       X3, X1, X1
	VZEROUPPER
	ANDQ         $7, CX
	JZ           mm_done

mm_tail:
	MOVSD (SI), X4
	MINSD X4, X0
	MAXSD X4, X1
	ADDQ  $8, SI
	DECQ  CX
	JNZ   mm_tail

mm_done:
	MOVSD X0, lo+24(FP)
	MOVSD X1, hi+32(FP)
	RET

// func quantizeSIMD(v []float64, code []int8, lo, inv float64) int32
//
// len must be a multiple of 8. code[i] = rne((v[i]-lo)·inv) - 128
// (VCVTPD2DQ rounds nearest-even under the default MXCSR), clamped to
// int8 in the int32 domain *before* the code-sum accumulates, so the
// returned sum always matches the bytes written. The saturating packs
// that narrow to int8 are then exact.
TEXT ·quantizeSIMD(SB), NOSPLIT, $0-68
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	MOVQ         code_base+24(FP), DX
	VBROADCASTSD lo+48(FP), Y8
	VBROADCASTSD inv+56(FP), Y9
	MOVL         $128, AX
	VMOVD        AX, X10
	VPBROADCASTD X10, X10
	MOVL         $127, AX
	VMOVD        AX, X13
	VPBROADCASTD X13, X13
	MOVL         $-128, AX
	VMOVD        AX, X14
	VPBROADCASTD X14, X14
	VPXOR        X11, X11, X11
	SHRQ         $3, CX
	JZ           q_sum

q_blk8:
	VMOVUPD    (SI), Y4
	VMOVUPD    32(SI), Y5
	VSUBPD     Y8, Y4, Y4
	VSUBPD     Y8, Y5, Y5
	VMULPD     Y9, Y4, Y4
	VMULPD     Y9, Y5, Y5
	VCVTPD2DQY Y4, X4
	VCVTPD2DQY Y5, X5
	VPSUBD     X10, X4, X4
	VPSUBD     X10, X5, X5
	VPMINSD    X13, X4, X4
	VPMINSD    X13, X5, X5
	VPMAXSD    X14, X4, X4
	VPMAXSD    X14, X5, X5
	VPADDD     X4, X11, X11
	VPADDD     X5, X11, X11
	VPACKSSDW  X5, X4, X6
	VPACKSSWB  X6, X6, X6
	VMOVQ      X6, (DX)
	ADDQ       $64, SI
	ADDQ       $8, DX
	DECQ       CX
	JNZ        q_blk8

q_sum:
	VPSHUFD $0x4E, X11, X12
	VPADDD  X12, X11, X11
	VPSHUFD $0xB1, X11, X12
	VPADDD  X12, X11, X11
	VMOVD   X11, AX
	VZEROUPPER
	MOVL    AX, ret+64(FP)
	RET
