// Package vecmath is the single home of the repo's float64 vector
// kernels. Every hot loop — hogwild SGNS updates (internal/skipgram,
// internal/baselines/line), the EHNA trainer's dense math
// (internal/tensor, internal/ag, internal/nn), exact and LSH
// similarity scans (internal/ann, internal/embstore) and the Table II
// edge operators (internal/eval) — routes through this package instead
// of hand-rolling its own scalar loop.
//
// All kernels are allocation-free and 4-way unrolled with independent
// accumulators, which buys instruction-level parallelism the naive
// single-accumulator loop cannot express (float64 adds must otherwise
// serialize to preserve evaluation order). Unrolling changes the
// floating-point summation order relative to a naive loop; results
// agree with the scalar reference to ~1e-12 relative error (asserted
// exhaustively for lengths 0–257 in vecmath_test.go and fuzzed in
// fuzz_test.go).
//
// Length mismatches are programmer errors and panic, mirroring
// internal/tensor and slice indexing.
//
// Fused kernels (SgnsUpdate, SgdStep, AdamStep, Score*) fold what used
// to be two or three passes over the operands into one, halving memory
// traffic on the training hot paths.
package vecmath

import "math"

// Dot returns the inner product Σ a[i]·b[i].
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	if simd64 && len(a) >= simdMinLanes {
		return dotSIMD(a, b)
	}
	return dotScalar(a, b)
}

func dotScalar(a, b []float64) float64 {
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += alpha·x (the BLAS axpy primitive).
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("vecmath: Axpy length mismatch")
	}
	x = x[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += alpha * x[i]
		dst[i+1] += alpha * x[i+1]
		dst[i+2] += alpha * x[i+2]
		dst[i+3] += alpha * x[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += alpha * x[i]
	}
}

// Add computes dst += x.
func Add(dst, x []float64) {
	if len(dst) != len(x) {
		panic("vecmath: Add length mismatch")
	}
	x = x[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += x[i]
		dst[i+1] += x[i+1]
		dst[i+2] += x[i+2]
		dst[i+3] += x[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += x[i]
	}
}

// ScaleInPlace computes v *= s element-wise.
func ScaleInPlace(v []float64, s float64) {
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		v[i] *= s
		v[i+1] *= s
		v[i+2] *= s
		v[i+3] *= s
	}
	for i := n; i < len(v); i++ {
		v[i] *= s
	}
}

// Zero sets every element of v to zero.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// SquaredL2 returns Σ v[i]².
func SquaredL2(v []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
		s2 += v[i+2] * v[i+2]
		s3 += v[i+3] * v[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(v); i++ {
		s += v[i] * v[i]
	}
	return s
}

// Norm returns the Euclidean norm ‖v‖₂.
func Norm(v []float64) float64 { return math.Sqrt(SquaredL2(v)) }

// SqDist returns the squared Euclidean distance ‖a−b‖².
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: SqDist length mismatch")
	}
	if simd64 && len(a) >= simdMinLanes {
		return sqDistSIMD(a, b)
	}
	return sqDistScalar(a, b)
}

func sqDistScalar(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// CosineWithNorms returns the cosine similarity of a and b given their
// precomputed L2 norms (0 when either norm is 0). Callers that score
// one query against many candidates compute the query norm once and
// thread it through, instead of recomputing it per candidate.
func CosineWithNorms(a, b []float64, aNorm, bNorm float64) float64 {
	if aNorm == 0 || bNorm == 0 {
		return 0
	}
	return Dot(a, b) / (aNorm * bNorm)
}

// Sigmoid is the numerically stable logistic function.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// SgnsUpdate is the fused skip-gram-with-negative-sampling update for
// one (input, context) pair with the given label (1 = positive,
// 0 = negative):
//
//	score = σ(v·ctx); g = lr·(label − score)
//	grad += g·ctx     (input-vector gradient, applied by the caller
//	ctx  += g·v        after all of the pair's negatives)
//
// The dot product, both axpys and the sigmoid run in a single pass,
// replacing the three separate loops of the naive implementation.
// v, ctx and grad must be distinct slices (no aliasing) of equal
// length. Returns the pre-update score σ(v·ctx).
func SgnsUpdate(v, ctx, grad []float64, label, lr float64) float64 {
	if len(v) != len(ctx) || len(v) != len(grad) {
		panic("vecmath: SgnsUpdate length mismatch")
	}
	score := Sigmoid(Dot(v, ctx))
	g := lr * (label - score)
	ctx = ctx[:len(v)]
	grad = grad[:len(v)]
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		c0, c1, c2, c3 := ctx[i], ctx[i+1], ctx[i+2], ctx[i+3]
		grad[i] += g * c0
		grad[i+1] += g * c1
		grad[i+2] += g * c2
		grad[i+3] += g * c3
		ctx[i] = c0 + g*v[i]
		ctx[i+1] = c1 + g*v[i+1]
		ctx[i+2] = c2 + g*v[i+2]
		ctx[i+3] = c3 + g*v[i+3]
	}
	for i := n; i < len(v); i++ {
		c := ctx[i]
		grad[i] += g * c
		ctx[i] = c + g*v[i]
	}
	return score
}

// SgdStep applies one SGD update w -= lr·(g + weightDecay·w) in a
// single fused pass.
func SgdStep(w, g []float64, lr, weightDecay float64) {
	if len(w) != len(g) {
		panic("vecmath: SgdStep length mismatch")
	}
	g = g[:len(w)]
	if weightDecay == 0 {
		Axpy(w, -lr, g)
		return
	}
	for i := range w {
		w[i] -= lr * (g[i] + weightDecay*w[i])
	}
}

// AdamStep applies one Adam update (Kingma & Ba) over the parameter w
// with first/second moment buffers m and v, gradient g and the
// bias-correction denominators c1 = 1−β1ᵗ, c2 = 1−β2ᵗ. All four
// slices must have equal length; the moment update and the parameter
// step run in one fused pass.
func AdamStep(w, m, v, g []float64, lr, beta1, beta2, eps, c1, c2 float64) {
	if len(w) != len(m) || len(w) != len(v) || len(w) != len(g) {
		panic("vecmath: AdamStep length mismatch")
	}
	m = m[:len(w)]
	v = v[:len(w)]
	g = g[:len(w)]
	for i, gi := range g {
		mi := beta1*m[i] + (1-beta1)*gi
		vi := beta2*v[i] + (1-beta2)*gi*gi
		m[i] = mi
		v[i] = vi
		w[i] -= lr * (mi / c1) / (math.Sqrt(vi/c2) + eps)
	}
}

// ScoreMean writes the element-wise mean (ex+ey)/2 into dst — the
// Mean edge operator of the paper's Table II.
func ScoreMean(dst, ex, ey []float64) {
	checkScore(dst, ex, ey)
	ey = ey[:len(dst)]
	ex = ex[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = (ex[i] + ey[i]) * 0.5
		dst[i+1] = (ex[i+1] + ey[i+1]) * 0.5
		dst[i+2] = (ex[i+2] + ey[i+2]) * 0.5
		dst[i+3] = (ex[i+3] + ey[i+3]) * 0.5
	}
	for i := n; i < len(dst); i++ {
		dst[i] = (ex[i] + ey[i]) * 0.5
	}
}

// ScoreHadamard writes the element-wise product ex⊙ey into dst — the
// Hadamard edge operator of Table II.
func ScoreHadamard(dst, ex, ey []float64) {
	checkScore(dst, ex, ey)
	ey = ey[:len(dst)]
	ex = ex[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = ex[i] * ey[i]
		dst[i+1] = ex[i+1] * ey[i+1]
		dst[i+2] = ex[i+2] * ey[i+2]
		dst[i+3] = ex[i+3] * ey[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] = ex[i] * ey[i]
	}
}

// ScoreL1 writes the element-wise absolute difference |ex−ey| into dst
// — the Weighted-L1 edge operator of Table II.
func ScoreL1(dst, ex, ey []float64) {
	checkScore(dst, ex, ey)
	ey = ey[:len(dst)]
	ex = ex[:len(dst)]
	for i := range dst {
		dst[i] = math.Abs(ex[i] - ey[i])
	}
}

// ScoreL2 writes the element-wise squared difference (ex−ey)² into dst
// — the Weighted-L2 edge operator of Table II.
func ScoreL2(dst, ex, ey []float64) {
	checkScore(dst, ex, ey)
	ey = ey[:len(dst)]
	ex = ex[:len(dst)]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		d0 := ex[i] - ey[i]
		d1 := ex[i+1] - ey[i+1]
		d2 := ex[i+2] - ey[i+2]
		d3 := ex[i+3] - ey[i+3]
		dst[i] = d0 * d0
		dst[i+1] = d1 * d1
		dst[i+2] = d2 * d2
		dst[i+3] = d3 * d3
	}
	for i := n; i < len(dst); i++ {
		d := ex[i] - ey[i]
		dst[i] = d * d
	}
}

func checkScore(dst, ex, ey []float64) {
	if len(dst) != len(ex) || len(ex) != len(ey) {
		panic("vecmath: score operator length mismatch")
	}
}
