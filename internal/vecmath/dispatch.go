// Kernel backend dispatch. The hot kernels (Dot/SqDist, the f32
// family, and the SQ8 set) each check a per-family flag and route to a
// hand-written SIMD implementation when the CPU supports one:
//
//   - amd64: AVX2+FMA (simd_amd64.s), selected at init by a local
//     cpuid probe (cpu_amd64.go) — no external dependency.
//   - arm64: NEON (simd_arm64.s) for the float kernels; ASIMD is
//     mandatory on armv8, so no probe is needed.
//   - everything else, and any build with the `noasm` tag: the flags
//     are compile-time false constants, the dispatch branches fold
//     away, and the portable scalar loops are all that is built.
//
// The public kernels stay thin wrappers (length check + one branch), so
// call sites keep the inlining and zero-allocation behavior of the
// scalar-only package; the scalar bodies remain as the always-built
// reference the SIMD paths are tested against (dispatch_amd64_test.go
// compares every assembly kernel to its scalar twin over lengths 0–257
// on aligned and unaligned slices).
//
// Runtime kill switch: setting EHNA_NOSIMD to any non-empty value
// forces the scalar backend without a rebuild — the ops escape hatch
// when a kernel is suspected. The `noasm` build tag removes the
// assembly entirely (CI runs the vecmath and ann suites both ways).
package vecmath

// Backend reports the active kernel backend: "avx2", "neon" or
// "scalar". Deployments surface this through ehnad's /healthz and the
// ehnad_kernel_backend gauge to verify they run on the fast path.
func Backend() string { return backendName }

// HasSQ8Sym reports whether DotSQ8Sym runs on a SIMD backend. ann
// gates its two-stage sq8 search on this: the symmetric integer
// kernel's SIMD form (VPMADDWD on AVX2) is several times cheaper than
// the asymmetric kernel, but its scalar form is slightly slower, so a
// symmetric first stage only pays when this reports true.
func HasSQ8Sym() bool { return simdSym }

// simdMinLanes is the shortest vector routed to a SIMD kernel: below
// one full block the scalar loop is at least as fast and the asm would
// run only its tail code.
const simdMinLanes = 16
