//go:build !noasm

package vecmath

import "os"

// arm64: ASIMD (NEON) is mandatory in ARMv8, so there is no CPU probe
// — only the env kill switch. NEON coverage is the float kernel set
// (Dot/SqDist and their f32 siblings, which carry HNSW beam traffic on
// f64/f32 stores plus training); the SQ8 integer family stays on the
// scalar fallback until the widening-multiply kernels land.
var (
	simd64  bool
	simd32  bool
	simdSQ8 bool // no NEON implementation yet
	simdSym bool // no NEON implementation yet
	simdEnc bool // no NEON implementation yet

	backendName = "scalar"
)

func init() {
	if os.Getenv("EHNA_NOSIMD") != "" {
		return
	}
	simd64, simd32 = true, true
	backendName = "neon"
}

//go:noescape
func dotSIMD(a, b []float64) float64

//go:noescape
func sqDistSIMD(a, b []float64) float64

//go:noescape
func dot32SIMD(a, b []float32) float64

//go:noescape
func sqDist32SIMD(a, b []float32) float64

// Unreachable: the SQ8 flags above are never set on arm64.
func dotSQ8RawSIMD(q []float64, code []int8) float64               { panic("vecmath: no neon sq8") }
func sqDistSQ8SIMD(q []float64, code []int8, s, o float64) float64 { panic("vecmath: no neon sq8") }
func dotSQ8SymRawSIMD(ac, bc []int8) int32                         { panic("vecmath: no neon sq8") }
func minMaxSIMD(v []float64) (lo, hi float64)                      { panic("vecmath: no neon sq8") }
func quantizeSIMD(v []float64, code []int8, lo, inv float64) int32 { panic("vecmath: no neon sq8") }
