//go:build !noasm

package vecmath

import (
	"os"
	"testing"
)

// TestBackendMatchesCPU: NEON is architecturally mandatory on arm64,
// so the backend is "neon" unless the env kill switch is set, and the
// NEON coverage is exactly the float kernel families.
func TestBackendMatchesCPU(t *testing.T) {
	want := "neon"
	if os.Getenv("EHNA_NOSIMD") != "" {
		want = "scalar"
	}
	if got := Backend(); got != want {
		t.Fatalf("Backend() = %q, want %q", got, want)
	}
	on := want == "neon"
	if simd64 != on || simd32 != on {
		t.Errorf("float flags (simd64=%v, simd32=%v) disagree with backend %q", simd64, simd32, want)
	}
	if simdSQ8 || simdSym || simdEnc {
		t.Errorf("sq8 flags set on arm64, which has no NEON sq8 kernels")
	}
}
