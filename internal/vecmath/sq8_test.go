package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func refL1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// closeF32 checks a float32-accumulated kernel against its float64
// reference: tolerance scales with the magnitude of the terms summed
// (not the result, which cancellation can drive toward zero).
func closeF32(got, want, termMag float64) bool {
	return math.Abs(got-want) <= 1e-4*(termMag+1)
}

func toF32(v []float64) []float32 {
	out := make([]float32, len(v))
	F64To32(out, v)
	return out
}

// TestFloat32KernelsMatchReference checks the f32 family against the
// float64 references over lengths 0–257 (every unroll remainder). The
// references run on the narrowed-then-widened values, so the only
// divergence measured is the kernels' float32 accumulation.
func TestFloat32KernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n <= 257; n++ {
		a := randVec(rng, n)
		b := randVec(rng, n)
		a32, b32 := toF32(a), toF32(b)
		// Widen back so the reference sees exactly the f32 lane values.
		aw := make([]float64, n)
		bw := make([]float64, n)
		F32To64(aw, a32)
		F32To64(bw, b32)
		for i := range aw {
			if aw[i] != float64(float32(a[i])) {
				t.Fatalf("F64To32/F32To64 n=%d lane %d: %g", n, i, aw[i])
			}
		}

		var termMag float64
		for i := range aw {
			termMag += math.Abs(aw[i] * bw[i])
		}
		if got, want := Dot32(a32, b32), refDot(aw, bw); !closeF32(got, want, termMag) {
			t.Fatalf("Dot32 n=%d: got %g want %g", n, got, want)
		}
		if got, want := SqDist32(a32, b32), refSqDist(aw, bw); !closeF32(got, want, want) {
			t.Fatalf("SqDist32 n=%d: got %g want %g", n, got, want)
		}

		na, nb := Norm(aw), Norm(bw)
		got := CosineWithNorms32(a32, b32, na, nb)
		var want float64
		if na != 0 && nb != 0 {
			want = refDot(aw, bw) / (na * nb)
		}
		if !closeF32(got, want, termMag/math.Max(na*nb, 1e-300)) {
			t.Fatalf("CosineWithNorms32 n=%d: got %g want %g", n, got, want)
		}
	}
}

// sq8Slop is the float-rounding allowance on top of the exact-math
// quantization bounds.
func sq8Slop(scale, offset float64) float64 {
	return 1e-9 * (math.Abs(offset) + 256*scale + 1)
}

// TestSQ8KernelsMatchReference checks encode/decode reconstruction
// bounds and both distance kernels against scalar references over
// lengths 0–257.
func TestSQ8KernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for n := 0; n <= 257; n++ {
		v := randVec(rng, n)
		q := randVec(rng, n)
		code := make([]int8, n)
		scale, offset, codeSum := EncodeSQ8(v, code)

		// Σ code matches.
		var wantSum int32
		for _, c := range code {
			wantSum += int32(c)
		}
		if codeSum != wantSum {
			t.Fatalf("EncodeSQ8 n=%d: codeSum %d want %d", n, codeSum, wantSum)
		}

		// Reconstruction error ≤ scale/2 per lane.
		dec := make([]float64, n)
		DecodeSQ8(dec, code, scale, offset)
		bound := scale/2 + sq8Slop(scale, offset)
		for i := range v {
			if d := math.Abs(dec[i] - v[i]); d > bound {
				t.Fatalf("DecodeSQ8 n=%d lane %d: |%g − %g| = %g > %g", n, i, dec[i], v[i], d, bound)
			}
		}

		// DotSQ8 is algebraically Dot(q, dec): tight agreement.
		qSum := Sum(q)
		got := DotSQ8(q, code, scale, offset, qSum)
		want := refDot(q, dec)
		tight := 1e-9 * (refL1(q)*(math.Abs(offset)+128*scale) + 1)
		if math.Abs(got-want) > tight {
			t.Fatalf("DotSQ8 n=%d vs Dot(q,dec): got %g want %g", n, got, want)
		}
		// ...and within the documented envelope of the true dot.
		env := scale/2*refL1(q) + tight
		if d := math.Abs(got - refDot(q, v)); d > env {
			t.Fatalf("DotSQ8 n=%d envelope: |%g − %g| = %g > %g", n, got, refDot(q, v), d, env)
		}

		// SqDistSQ8 is algebraically SqDist(q, dec).
		gotSq := SqDistSQ8(q, code, scale, offset)
		wantSq := refSqDist(q, dec)
		if math.Abs(gotSq-wantSq) > 1e-9*(wantSq+1) {
			t.Fatalf("SqDistSQ8 n=%d: got %g want %g", n, gotSq, wantSq)
		}

		// DotSQ8Sym is algebraically Dot(decA, decB).
		code2 := make([]int8, n)
		scale2, offset2, codeSum2 := EncodeSQ8(q, code2)
		dec2 := make([]float64, n)
		DecodeSQ8(dec2, code2, scale2, offset2)
		gotSym := DotSQ8Sym(code, code2, scale, offset, scale2, offset2, codeSum, codeSum2)
		wantSym := refDot(dec, dec2)
		symSlop := 1e-9 * (refL1(dec)*math.Max(math.Abs(offset2)+128*scale2, 1) + refL1(dec2) + math.Abs(wantSym) + 1)
		if math.Abs(gotSym-wantSym) > symSlop {
			t.Fatalf("DotSQ8Sym n=%d: got %g want %g", n, gotSym, wantSym)
		}

		// Sum matches its reference.
		var wantQSum float64
		for _, x := range q {
			wantQSum += x
		}
		if !close12(qSum, wantQSum) {
			t.Fatalf("Sum n=%d: got %g want %g", n, qSum, wantQSum)
		}
	}
}

// TestSQ8ConstantVector: scale-0 encodes reconstruct exactly.
func TestSQ8ConstantVector(t *testing.T) {
	v := []float64{3.25, 3.25, 3.25, 3.25, 3.25}
	code := make([]int8, len(v))
	scale, offset, codeSum := EncodeSQ8(v, code)
	if scale != 0 || offset != 3.25 || codeSum != 0 {
		t.Fatalf("constant encode: scale %g offset %g sum %d", scale, offset, codeSum)
	}
	dec := make([]float64, len(v))
	DecodeSQ8(dec, code, scale, offset)
	for i, x := range dec {
		if x != 3.25 {
			t.Fatalf("constant decode lane %d: %g", i, x)
		}
	}
}

// TestSQ8ExtremeLanesClamp: codes stay in int8 for adversarial ranges.
func TestSQ8ExtremeLanesClamp(t *testing.T) {
	v := []float64{-1e9, 1e9, 0, 1e-9, -1e-9, 5}
	code := make([]int8, len(v))
	scale, offset, _ := EncodeSQ8(v, code)
	dec := make([]float64, len(v))
	DecodeSQ8(dec, code, scale, offset)
	bound := scale/2 + sq8Slop(scale, offset)
	for i := range v {
		if d := math.Abs(dec[i] - v[i]); d > bound {
			t.Fatalf("extreme lane %d: err %g > %g", i, d, bound)
		}
	}
}

// TestCompressedKernelsZeroAlloc asserts the new kernel families are
// allocation-free, matching the float64 bar.
func TestCompressedKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randVec(rng, 131)
	b := randVec(rng, 131)
	a32, b32 := toF32(a), toF32(b)
	code := make([]int8, 131)
	code2 := make([]int8, 131)
	dec := make([]float64, 131)
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += Dot32(a32, b32)
		sink += SqDist32(a32, b32)
		sink += CosineWithNorms32(a32, b32, 1, 1)
		F64To32(a32, a)
		F32To64(dec, b32)
		sink += Sum(a)
		s, o, cs := EncodeSQ8(a, code)
		s2, o2, cs2 := EncodeSQ8(b, code2)
		DecodeSQ8(dec, code, s, o)
		sink += DotSQ8(b, code, s, o, Sum(b))
		sink += SqDistSQ8(b, code, s, o)
		sink += DotSQ8Sym(code, code2, s, o, s2, o2, cs, cs2)
	})
	if allocs != 0 {
		t.Fatalf("compressed kernels allocated %v times per run", allocs)
	}
	_ = sink
}

func TestSQ8LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotSQ8 with mismatched lengths did not panic")
		}
	}()
	DotSQ8(make([]float64, 3), make([]int8, 4), 1, 0, 0)
}
