#!/usr/bin/env bash
# loadtest.sh — CI smoke for the observability plane: boot a durable
# sq8/hnsw daemon from empty, seed it through the API, drive a short
# fixed-arrival-rate open-loop pass with ehnad-loadgen, and assert
#   (a) the SLO gate passes (exit code is the verdict), and
#   (b) /metrics serves a non-empty exposition carrying the core
#       series from every instrumented layer.
#
# Tunables (env): DIM NODES RATE DURATION SLO
set -euo pipefail
cd "$(dirname "$0")/.."

dim="${DIM:-16}"
nodes="${NODES:-5000}"
rate="${RATE:-400}"
duration="${DURATION:-5s}"
# CI machines are noisy neighbors; the smoke gate proves the plumbing
# (quantiles measured, gate enforced), not a latency budget.
slo="${SLO:-p99<500ms,errors<1%}"
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ]; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true # SIGTERM drains; let it finish before rm
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ehnad" ./cmd/ehnad
go build -o "$workdir/ehnad-loadgen" ./cmd/ehnad-loadgen

"$workdir/ehnad" -addr "$addr" -wal "$workdir/wal" -dim "$dim" \
  -index hnsw -precision sq8 -fsync 100ms -snapshot-interval 0 &
daemon_pid=$!

for _ in $(seq 1 100); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  kill -0 "$daemon_pid" 2>/dev/null || { echo "loadtest: daemon died during boot" >&2; exit 1; }
  sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null

echo "== seeded open-loop pass: $nodes nodes, ${rate}/s for $duration, slo $slo =="
"$workdir/ehnad-loadgen" -target "http://$addr" -preload "$nodes" \
  -rate "$rate" -duration "$duration" -read-frac 0.9 \
  -slo "$slo" -json "$workdir/report.json"

echo "== /metrics exposition =="
metrics="$(curl -sf "http://$addr/metrics")"
[ -n "$metrics" ] || { echo "loadtest: empty /metrics" >&2; exit 1; }
for series in \
  ehnad_http_requests_total \
  ehnad_http_request_seconds_bucket \
  ehnad_ann_queries_total \
  ehnad_batch_size_count \
  ehnad_store_nodes \
  ehnad_wal_fsync_seconds_count \
  ehnad_graph_nodes \
  go_goroutines \
  ehnad_build_info; do
  grep -q "^$series" <<<"$metrics" || { echo "loadtest: /metrics missing $series" >&2; exit 1; }
done
echo "loadtest: ok (report at $workdir/report.json)"
cat "$workdir/report.json"
