#!/usr/bin/env bash
# coldstore.sh — CI drill for the beyond-RAM serving path: build a
# dataset whose artifacts come from ehnad-mkstore (flat v3 snapshot +
# prebuilt HNSW graph + exact-truth file), boot ehnad with -store=mmap
# so the vector slabs are served straight from the mapping, and assert
#   (a) boot is O(1): the daemon is answering within seconds regardless
#       of dataset size (boot_s is printed for the log),
#   (b) quality holds: mean recall@10 over the truth queries clears
#       MIN_RECALL (ehnad-mkstore -check is the gate),
#   (c) a read-only open-loop pass completes with zero errors, and
#   (d) RSS stays bounded: process.resident_bytes from /healthz must
#       stay under RSS_BUDGET_MB after the load pass. The budget bounds
#       the whole process (Go heap + HNSW graph + resident pages of the
#       mapping); the mapped slab itself is reclaimable page cache, and
#       the drill prints mapped vs resident so regressions in either
#       are visible in the CI log.
#
# ulimit -v is deliberately NOT used: it caps address space, which is
# exactly what mmap-mode spends freely by design. The RSS gate reads
# the daemon's own /proc-backed gauge instead.
#
# Tunables (env): NODES DIM RATE DURATION MIN_RECALL RSS_BUDGET_MB
#                 EF_SEARCH HNSW_M EF_CONSTRUCTION
set -euo pipefail
cd "$(dirname "$0")/.."

nodes="${NODES:-200000}"
dim="${DIM:-64}"
rate="${RATE:-300}"
duration="${DURATION:-5s}"
min_recall="${MIN_RECALL:-0.95}"
rss_budget_mb="${RSS_BUDGET_MB:-512}"
# Isotropic Gaussian dim-64 data is HNSW's hardest case (no cluster
# structure, near-orthogonal vectors); a denser graph and a wide beam
# buy the recall the gate demands. Real embeddings cluster and need
# far less (the library defaults hold ≥0.95 at 100k on dim-32).
ef_search="${EF_SEARCH:-512}"
hnsw_m="${HNSW_M:-32}"
ef_construction="${EF_CONSTRUCTION:-400}"
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ]; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ehnad" ./cmd/ehnad
go build -o "$workdir/ehnad-loadgen" ./cmd/ehnad-loadgen
go build -o "$workdir/ehnad-mkstore" ./cmd/ehnad-mkstore

echo "== artifacts: $nodes × dim-$dim sq8 + hnsw graph + exact truth =="
"$workdir/ehnad-mkstore" -out "$workdir/data" -n "$nodes" -dim "$dim" \
  -precision sq8 -queries 100 -k 10 -hnsw \
  -m "$hnsw_m" -ef-construction "$ef_construction"

echo "== boot -store=mmap =="
"$workdir/ehnad" -addr "$addr" -store=mmap \
  -snapshot "$workdir/data/store.snap" \
  -index hnsw -hnsw-graph "$workdir/data/graph.gob" \
  -precision sq8 -ef-search "$ef_search" &
daemon_pid=$!

for _ in $(seq 1 100); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  kill -0 "$daemon_pid" 2>/dev/null || { echo "coldstore: daemon died during boot" >&2; exit 1; }
  sleep 0.1
done
health="$(curl -sf "http://$addr/healthz")"

# healthz_num FIELD — pull a numeric field out of the /healthz JSON
# without depending on jq being present on the CI runner.
healthz_num() {
  grep -o "\"$1\":[0-9.]*" <<<"$health" | head -1 | cut -d: -f2
}
grep -q '"store_mode":"mmap"' <<<"$health" || { echo "coldstore: daemon is not in mmap mode" >&2; exit 1; }
echo "boot_s=$(healthz_num boot_s) mapped_bytes=$(healthz_num mapped_bytes)" \
  "mapped_payload_bytes=$(healthz_num mapped_payload_bytes)" \
  "mapped_resident_bytes=$(healthz_num mapped_resident_bytes)"

echo "== recall gate: mean recall@10 over the truth queries =="
"$workdir/ehnad-mkstore" -check "$workdir/data" -target "http://$addr" \
  -min-recall "$min_recall"

echo "== read-only open-loop pass: ${rate}/s for $duration =="
"$workdir/ehnad-loadgen" -target "http://$addr" -read-frac 1 \
  -rate "$rate" -duration "$duration" \
  -json "$workdir/report.json"
errors="$(grep -o '"errors":[[:space:]]*[0-9]*' "$workdir/report.json" | head -1 | grep -o '[0-9]*$')"
[ "$errors" = "0" ] || { echo "coldstore: load pass saw $errors errors, want 0" >&2; exit 1; }

echo "== RSS gate: resident_bytes < ${rss_budget_mb}MB after load =="
health="$(curl -sf "http://$addr/healthz")"
rss="$(healthz_num resident_bytes)"
mapped_res="$(healthz_num mapped_resident_bytes)"
[ -n "$rss" ] || { echo "coldstore: /healthz carries no process.resident_bytes" >&2; exit 1; }
echo "resident_bytes=$rss mapped_resident_bytes=$mapped_res budget=$((rss_budget_mb * 1024 * 1024))"
if [ "$rss" -ge $((rss_budget_mb * 1024 * 1024)) ]; then
  echo "coldstore: RSS $rss exceeds budget ${rss_budget_mb}MB" >&2
  exit 1
fi
echo "coldstore: ok"
