#!/usr/bin/env bash
# bench.sh — run the repo's key performance benchmarks and merge the
# results under a label into a JSON trajectory file (default
# BENCH_PR10.json) via cmd/benchjson.
#
# Usage:
#   scripts/bench.sh before            # before a change
#   ... hack hack hack ...
#   scripts/bench.sh after             # after the change
#   scripts/bench.sh after OUT.json    # custom output file
#
# The benchmark set covers both halves of the system:
#   - BenchmarkTable8Efficiency / BenchmarkFig4ReconstructionDigg:
#     end-to-end training throughput (the paper's efficiency tables)
#   - BenchmarkANNTopK (exact vs LSH vs HNSW at 10k/100k, across the
#     f64/f32/sq8 slab precisions, with recall@10, bytes_per_vector
#     and allocs/op) / BenchmarkKernels (per-kernel ns/op + MB/s on
#     the active vecmath backend) / BenchmarkEmbstoreBulkLoad /
#     BenchmarkHNSWBuild / BenchmarkWALAppend: the serving and ingest
#     paths
#   - BenchmarkSnapshotLoad: boot-path store recovery (legacy gob
#     decode vs flat-v3 copy vs mmap at 100k/1M); mmap rows carry
#     warm-/cold-page-cache labels (mmap-warm = file still cached,
#     e.g. restart after rotation; mmap-cold = pages evicted first,
#     e.g. first boot on a fresh machine)
# Micro benchmarks run time-based for stable ns/op; the macro
# experiment benchmarks run a fixed 2 iterations (each is seconds).
set -euo pipefail

label="${1:?usage: scripts/bench.sh <label> [out.json]}"
out="${2:-BENCH_PR10.json}"
cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== micro (serving + ingest paths) =="
# The precision matrix runs six 100k-node index builds; give the
# harness room well past go test's default 10m timeout.
go test -run=NONE -timeout=120m -bench='BenchmarkANNTopK$|BenchmarkKernels$|BenchmarkEmbstoreBulkLoad$|BenchmarkHNSWBuild$|BenchmarkWALAppend$|BenchmarkSnapshotLoad$' \
  -benchtime=1s -benchmem -count=1 . | tee -a "$tmp"

echo "== macro (training path) =="
go test -run=NONE -bench='BenchmarkTable8Efficiency$|BenchmarkFig4ReconstructionDigg$' \
  -benchtime=2x -benchmem -count=1 . | tee -a "$tmp"

go run ./cmd/benchjson -label "$label" -out "$out" "$tmp"
