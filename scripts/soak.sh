#!/usr/bin/env bash
# soak.sh — the adversarial durability harness, runnable locally:
#
#   1. churn soak under the race detector: concurrent upserts, deletes
#      and searches while background compaction swaps the HNSW index
#      (recall gate 0.9, zero-alloc check after the swap)
#   2. crash/replay: a real daemon process SIGKILLed mid-write-stream
#      with a torn WAL tail injected, recovered and diffed against the
#      acknowledged-prefix reference — run under -race as well
#   3. WAL property tests (idempotent replay, composition, truncation
#      safety) under -race
#   4. coverage-guided fuzzing of the WAL frame decoder
#
# Usage: scripts/soak.sh            # ~1-2 minutes
#        FUZZTIME=5m scripts/soak.sh  # longer fuzz budget
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== churn soak + index swap (race) =="
go test -race -run 'TestChurnSoakCompaction|TestCompact' -count=1 -v ./internal/ann/ | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "== crash recovery + wal properties (race) =="
go test -race -count=1 ./internal/wal/ ./cmd/ehnad/

echo "== wal decoder fuzz (${FUZZTIME:-30s}) =="
go test -run=NONE -fuzz=FuzzWALDecode -fuzztime="${FUZZTIME:-30s}" ./internal/wal/

echo "soak: all green"
