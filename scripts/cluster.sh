#!/usr/bin/env bash
# cluster.sh — CI failover drill for the distributed serving plane:
# boot a 2-shard cluster (shard a = leader + WAL-shipping follower,
# shard b = lone leader) behind ehnad-router, then assert the serving
# contract through two faults:
#   (a) seeding and searching through the router works shard-agnostically
#       (the router owns the consistent-hash map; clients never pick
#       shards);
#   (b) SIGKILL of shard a's leader: the router's health loop promotes
#       the follower, searches keep answering 200 throughout the
#       window (the follower serves reads while still a follower), and
#       writes ack again after promotion — no operator action;
#   (c) SIGKILL of shard b (no replica): searches degrade to partial
#       results — 200 with degraded:true and shards_answered 1 of 2 —
#       instead of going dark.
#
# Tunables (env): DIM SEED_OPS
set -euo pipefail
cd "$(dirname "$0")/.."

dim="${DIM:-8}"
seed_ops="${SEED_OPS:-40}"
port_a=$((20000 + RANDOM % 10000))
port_b=$((port_a + 1))
port_f=$((port_a + 2))
port_r=$((port_a + 3))
url_a="http://127.0.0.1:$port_a"
url_b="http://127.0.0.1:$port_b"
url_f="http://127.0.0.1:$port_f"
url_r="http://127.0.0.1:$port_r"

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT
die() { echo "cluster: $*" >&2; exit 1; }

go build -o "$workdir/ehnad" ./cmd/ehnad
go build -o "$workdir/ehnad-router" ./cmd/ehnad-router

# boot_daemon NAME PORT [extra flags...] — boots one ehnad over its own
# WAL dir and waits for /healthz. Appends the pid to pids.
boot_daemon() {
  local name="$1" port="$2"
  shift 2
  "$workdir/ehnad" -addr "127.0.0.1:$port" -wal "$workdir/wal-$name" -dim "$dim" \
    -index hnsw -fsync always -snapshot-interval 0 "$@" &
  local pid=$!
  pids+=("$pid")
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && { eval "pid_$name=$pid"; return 0; }
    kill -0 "$pid" 2>/dev/null || die "daemon $name died during boot"
    sleep 0.1
  done
  die "daemon $name never became healthy"
}

vec() {
  local v="[$(($1 + 1))"
  for _ in $(seq 2 "$dim"); do v+=",0.5"; done
  echo "$v]"
}

upsert_code() {
  curl -s -o /dev/null -w '%{http_code}' -X POST "$url_r/v1/upsert" \
    -H 'Content-Type: application/json' -d "{\"id\":$1,\"vector\":$(vec "$1")}"
}

search_code() {
  curl -s -o /dev/null -w '%{http_code}' -X POST "$url_r/v1/neighbors" \
    -H 'Content-Type: application/json' -d "{\"id\":$1,\"k\":3}"
}

vector_search() {
  curl -s -X POST "$url_r/v1/neighbors" \
    -H 'Content-Type: application/json' -d "{\"vector\":$(vec 0),\"k\":3}"
}

vector_search_code() {
  curl -s -o /dev/null -w '%{http_code}' -X POST "$url_r/v1/neighbors" \
    -H 'Content-Type: application/json' -d "{\"vector\":$(vec 0),\"k\":3}"
}

echo "== boot cluster: shard a = $url_a + follower $url_f, shard b = $url_b =="
boot_daemon a "$port_a"
boot_daemon b "$port_b"
boot_daemon f "$port_f" -follow "$url_a"

"$workdir/ehnad-router" -listen "127.0.0.1:$port_r" \
  -shard "a=$url_a,$url_f" -shard "b=$url_b" \
  -failover -health-interval 100ms -fail-after 2 &
pids+=($!)
for _ in $(seq 1 100); do
  curl -sf "$url_r/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$url_r/healthz" >/dev/null || die "router never became healthy"

echo "== seed $seed_ops vectors through the router =="
for i in $(seq 0 $((seed_ops - 1))); do
  code="$(upsert_code "$i")"
  [ "$code" = 200 ] || die "seed upsert $i got $code"
done
code="$(search_code 0)"
[ "$code" = 200 ] || die "pre-failover search got $code"
vector_search | grep -q '"degraded":true' && die "healthy cluster answered degraded"

echo "== SIGKILL shard a leader; router must promote the follower =="
kill -9 "$pid_a"
promoted=""
for _ in $(seq 1 150); do
  # Scatter searches stay up for the whole failover window — at worst
  # degraded while the dead leader is still presumed healthy. (Id
  # queries can 503 in that blink: resolving the id's vector pins the
  # request to the owning shard's current read endpoint.)
  code="$(vector_search_code)"
  [ "$code" = 200 ] || die "search during failover got $code"
  if curl -s "$url_f/v1/repl/status" | grep -q '"role":"leader"'; then
    promoted=1
    break
  fi
  sleep 0.1
done
[ -n "$promoted" ] || die "follower never promoted"
echo "   follower promoted: $(curl -s "$url_f/v1/repl/status")"

echo "== writes ack again after failover (shard a now = promoted follower) =="
ok=""
for _ in $(seq 1 100); do
  all=200
  for i in $(seq 0 $((seed_ops - 1))); do
    code="$(upsert_code "$i")"
    [ "$code" = 200 ] || { all="$code"; break; }
  done
  [ "$all" = 200 ] && { ok=1; break; }
  sleep 0.2
done
[ -n "$ok" ] || die "writes never recovered after failover (last code $all)"

echo "== SIGKILL shard b (no replica); searches must degrade, not die =="
kill -9 "$pid_b"
degraded=""
for _ in $(seq 1 150); do
  body="$(vector_search)"
  echo "$body" | grep -q '"results"' || die "search with a dark shard returned no results payload: $body"
  if echo "$body" | grep -q '"degraded":true'; then
    echo "$body" | grep -q '"shards_answered":1' || die "degraded without shards_answered=1: $body"
    degraded=1
    break
  fi
  sleep 0.1
done
[ -n "$degraded" ] || die "searches never reported degraded after shard b died"

echo "cluster drill passed: seeded through the router, survived leader SIGKILL via follower promotion, degraded to partial results on an unreplicated shard loss"
