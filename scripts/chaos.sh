#!/usr/bin/env bash
# chaos.sh — CI fault drill for the WAL write path: boot a durable
# daemon with -fault injecting an ENOSPC mid-stream and a burst of
# fsync EIO failures, drive a serial upsert stream against it, and
# assert the documented overload/failure contract at every step:
#   (a) each injected fault flips the daemon into read-only degraded
#       mode — writes 503, /readyz not-ready — while searches and
#       /healthz keep answering 200;
#   (b) the faults are count-limited, so the 1s heal loop reopens the
#       log and resumes writes without a restart (/readyz back to 200);
#   (c) after both drills the store holds exactly the acked prefix
#       (every acked id searchable, node count matches);
#   (d) SIGTERM exits 0, and the post-shutdown boot replays 0 WAL
#       records with the same node count — the acked prefix survived
#       two faults, two heals and a graceful shutdown.
#
# Tunables (env): DIM FAULT MAX_OPS
set -euo pipefail
cd "$(dirname "$0")/.."

dim="${DIM:-8}"
# Phase 1: the 16th append dies with ENOSPC (disk full) — around the
# 15th op, since boot barely writes.
# Phase 2: two fsyncs starting at the 31st die with EIO — mid-stream,
# with the second consumed by the heal loop's reopen probe.
# Both rules clear themselves after firing (count=), so each drill
# must end in a heal.
fault="${FAULT:-write:after=15,count=1,err=enospc;sync:after=30,count=2}"
total_ops="${TOTAL_OPS:-40}"
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ]; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true # let the drain finish before rm
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT
die() { echo "chaos: $*" >&2; exit 1; }

go build -o "$workdir/ehnad" ./cmd/ehnad

boot() {
  "$workdir/ehnad" -addr "$addr" -wal "$workdir/wal" -dim "$dim" \
    -index hnsw -fsync always -snapshot-interval 0 "$@" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$daemon_pid" 2>/dev/null || die "daemon died during boot"
    sleep 0.1
  done
  die "daemon never became healthy"
}

# vec ID -> a distinguishable $dim-dim vector [ID+1, 0, 0, ...]
vec() {
  local v="[$(($1 + 1))"
  for _ in $(seq 2 "$dim"); do v+=",0"; done
  echo "$v]"
}

upsert_code() {
  curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/upsert" \
    -H 'Content-Type: application/json' -d "{\"id\":$1,\"vector\":$(vec "$1")}"
}

readyz_code() { curl -s -o /dev/null -w '%{http_code}' "http://$addr/readyz"; }

search_code() {
  curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/neighbors" \
    -H 'Content-Type: application/json' -d "{\"id\":$1,\"k\":3}"
}

healthz() { curl -sf "http://$addr/healthz"; }

echo "== boot with fault injection: $fault =="
boot -fault "$fault"

faults=0
id=0
while [ "$id" -lt "$total_ops" ]; do
  code="$(upsert_code "$id")"
  case "$code" in
  200)
    id=$((id + 1))
    ;;
  503)
    faults=$((faults + 1))
    echo "== fault $faults fired at op $id: write path 503, checking the degraded contract =="
    healthz | grep -q '"read_only":true' || die "healthz does not report read_only after fault $faults"
    [ "$(readyz_code)" = "503" ] || die "/readyz still ready in read-only mode"
    [ "$(search_code 0)" = "200" ] || die "search refused in read-only mode (must keep serving)"
    echo "== waiting for the count-limited fault to clear and the heal loop to recover =="
    healed=""
    for _ in $(seq 1 150); do
      [ "$(readyz_code)" = "200" ] && { healed=1; break; }
      sleep 0.2
    done
    [ -n "$healed" ] || die "write path never healed after fault $faults"
    # Loop around without incrementing: the ambiguous op retries until
    # acked (an at-least-once replay — upserts are idempotent by id).
    ;;
  *)
    die "op $id: unexpected status $code"
    ;;
  esac
done
[ "$faults" -ge 2 ] || die "only $faults injected fault(s) fired in $total_ops ops"
acked="$id"
echo "== both drills healed; $acked acked upserts (ids 0..$((acked - 1))) =="

nodes="$(healthz | grep -o '"nodes":[0-9]*' | head -1 | cut -d: -f2)"
[ "$nodes" = "$acked" ] || die "store holds $nodes nodes, acked prefix is $acked"
for probe in 0 $((acked / 2)) $((acked - 1)); do
  [ "$(search_code "$probe")" = "200" ] || die "acked id $probe not searchable after recovery"
done
heals="$(healthz | grep -o '"heals":[0-9]*' | cut -d: -f2)"
[ "$heals" -ge 2 ] || die "expected >=2 heals, got $heals"

echo "== SIGTERM: graceful drain must exit 0 and snapshot everything =="
kill -TERM "$daemon_pid"
wait "$daemon_pid" || die "daemon exited non-zero after SIGTERM"
daemon_pid=""

echo "== reboot without faults: clean snapshot, zero replay, same state =="
boot
replayed="$(healthz | grep -o '"replayed_records":[0-9]*' | cut -d: -f2)"
[ "$replayed" = "0" ] || die "replayed $replayed records after a graceful shutdown, want 0"
nodes2="$(healthz | grep -o '"nodes":[0-9]*' | head -1 | cut -d: -f2)"
[ "$nodes2" = "$acked" ] || die "rebooted store holds $nodes2 nodes, want $acked"
[ "$(search_code 0)" = "200" ] || die "rebooted daemon cannot search"

echo "chaos: ok ($acked acked ops survived 2 faults, 2 heals, and a graceful shutdown)"
