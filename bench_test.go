// Package ehnabench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark runs the corresponding
// experiment at the Quick preset and reports the headline numbers through
// b.ReportMetric, so
//
//	go test -bench . -benchtime 1x
//
// reprints the whole evaluation. cmd/experiments runs the same code at the
// Full preset for the numbers recorded in EXPERIMENTS.md.
package ehnabench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"ehna/internal/ann"
	"ehna/internal/datagen"
	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/experiments"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/vecmath"
	"ehna/internal/wal"
)

func quick() experiments.Settings { return experiments.Quick() }

// benchFig4 is the generic Figure 4 panel runner.
func benchFig4(b *testing.B, d datagen.Dataset) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4(quick(), d)
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Ps) - 1
		b.ReportMetric(r.Precisions["EHNA"][0], "EHNA_p@first")
		b.ReportMetric(r.Precisions["EHNA"][last], "EHNA_p@last")
		b.ReportMetric(r.Precisions["Node2Vec"][0], "N2V_p@first")
	}
}

// BenchmarkFig4ReconstructionDigg regenerates Figure 4a.
func BenchmarkFig4ReconstructionDigg(b *testing.B) { benchFig4(b, datagen.Digg) }

// BenchmarkFig4ReconstructionYelp regenerates Figure 4b.
func BenchmarkFig4ReconstructionYelp(b *testing.B) { benchFig4(b, datagen.Yelp) }

// BenchmarkFig4ReconstructionTmall regenerates Figure 4c.
func BenchmarkFig4ReconstructionTmall(b *testing.B) { benchFig4(b, datagen.Tmall) }

// BenchmarkFig4ReconstructionDBLP regenerates Figure 4d.
func BenchmarkFig4ReconstructionDBLP(b *testing.B) { benchFig4(b, datagen.DBLP) }

// benchLinkPred is the generic Tables III–VI runner.
func benchLinkPred(b *testing.B, d datagen.Dataset) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunLinkPred(quick(), d)
		if err != nil {
			b.Fatal(err)
		}
		cell := r.Cells[eval.WeightedL2]["EHNA"]
		b.ReportMetric(cell.AUC, "EHNA_WL2_AUC")
		b.ReportMetric(cell.F1, "EHNA_WL2_F1")
		b.ReportMetric(r.Cells[eval.Hadamard]["EHNA"].AUC, "EHNA_Had_AUC")
	}
}

// BenchmarkTable3LinkPredDigg regenerates Table III.
func BenchmarkTable3LinkPredDigg(b *testing.B) { benchLinkPred(b, datagen.Digg) }

// BenchmarkTable4LinkPredYelp regenerates Table IV.
func BenchmarkTable4LinkPredYelp(b *testing.B) { benchLinkPred(b, datagen.Yelp) }

// BenchmarkTable5LinkPredTmall regenerates Table V.
func BenchmarkTable5LinkPredTmall(b *testing.B) { benchLinkPred(b, datagen.Tmall) }

// BenchmarkTable6LinkPredDBLP regenerates Table VI.
func BenchmarkTable6LinkPredDBLP(b *testing.B) { benchLinkPred(b, datagen.DBLP) }

// BenchmarkTable7Ablation regenerates Table VII (on the Digg analogue; the
// Full preset in cmd/experiments covers all four datasets).
func BenchmarkTable7Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblation(quick(), []datagen.Dataset{datagen.Digg})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.F1["EHNA"][datagen.Digg], "EHNA_F1")
		b.ReportMetric(r.F1["EHNA-NA"][datagen.Digg], "NA_F1")
		b.ReportMetric(r.F1["EHNA-RW"][datagen.Digg], "RW_F1")
		b.ReportMetric(r.F1["EHNA-SL"][datagen.Digg], "SL_F1")
	}
}

// BenchmarkTable8Efficiency regenerates Table VIII.
func BenchmarkTable8Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunEfficiency(quick(), []datagen.Dataset{datagen.Digg})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Seconds["EHNA"][datagen.Digg], "EHNA_s")
		b.ReportMetric(r.Seconds["HTNE"][datagen.Digg], "HTNE_s")
		b.ReportMetric(r.Seconds["Node2Vec"][datagen.Digg], "N2V_s")
		b.ReportMetric(r.Seconds["Node2Vec_W"][datagen.Digg], "N2VW_s")
	}
}

// benchSweep is the generic Figure 5 panel runner.
func benchSweep(b *testing.B, p experiments.SweepParam) {
	b.Helper()
	s := quick()
	s.Repeats = 2
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunParamSweep(s, datagen.Yelp, p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[0].F1, "F1_first")
		b.ReportMetric(r.Points[len(r.Points)-1].F1, "F1_last")
	}
}

// BenchmarkFig5Margin regenerates Figure 5a.
func BenchmarkFig5Margin(b *testing.B) { benchSweep(b, experiments.SweepMargin) }

// BenchmarkFig5WalkLen regenerates Figure 5b.
func BenchmarkFig5WalkLen(b *testing.B) { benchSweep(b, experiments.SweepWalkLen) }

// BenchmarkFig5P regenerates Figure 5c.
func BenchmarkFig5P(b *testing.B) { benchSweep(b, experiments.SweepP) }

// BenchmarkFig5Q regenerates Figure 5d.
func BenchmarkFig5Q(b *testing.B) { benchSweep(b, experiments.SweepQ) }

// BenchmarkExtensionOperatorCombo runs the future-work extension the paper
// defers: single operators vs the 4-operator concatenation.
func BenchmarkExtensionOperatorCombo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunOperatorCombo(quick(), datagen.Digg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AUC["Combined"], "Combined_AUC")
		b.ReportMetric(r.AUC["Hadamard"], "Hadamard_AUC")
	}
}

// BenchmarkAblationCheapNegatives measures the design choice DESIGN.md
// calls out: routing negatives through the cheap neighborhood-mean
// fallback is faster per epoch but lets the model separate aggregation
// pathways instead of nodes (the reported F1 gap shows the cost).
func BenchmarkAblationCheapNegatives(b *testing.B) {
	s := quick()
	for i := 0; i < b.N; i++ {
		faithful, err := experiments.RunAblationCheapNegatives(s, datagen.Digg, false)
		if err != nil {
			b.Fatal(err)
		}
		cheap, err := experiments.RunAblationCheapNegatives(s, datagen.Digg, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(faithful, "faithful_F1")
		b.ReportMetric(cheap, "cheap_F1")
	}
}

// BenchmarkAblationWorkers measures the parallel-training speedup of the
// shadow-replica trainer (workers=1 vs workers=4).
func BenchmarkAblationWorkers(b *testing.B) {
	s := quick()
	for i := 0; i < b.N; i++ {
		t1, t4, err := experiments.RunWorkerScaling(s, datagen.Digg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t1, "serial_s")
		b.ReportMetric(t4, "workers4_s")
		b.ReportMetric(t1/t4, "speedup_x")
	}
}

// servingDim is the embedding width for the serving-path benchmarks,
// matching the EHNA default.
const servingDim = 32

// BenchmarkEmbstoreBulkLoad measures loading a full embedding matrix
// into the sharded store at serving scales.
func BenchmarkEmbstoreBulkLoad(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			emb := tensor.Randn(n, servingDim, 1, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := embstore.FromMatrix(emb, embstore.DefaultShards)
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != n {
					b.Fatal("short load")
				}
			}
		})
	}
}

// benchANN measures per-query latency of an index over a store of the
// given slab precision and reports recall@10 against full-precision
// exact search plus the per-vector slab footprint.
func benchANN(b *testing.B, n int, prec embstore.Precision, mk func(*embstore.Store) (ann.Index, error)) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	emb := tensor.Randn(n, servingDim, 1, rng)
	s, err := embstore.FromMatrixPrecision(emb, embstore.DefaultShards, prec)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := mk(s)
	if err != nil {
		b.Fatal(err)
	}
	const k = 10
	// Recall vs full-precision exact over a fixed query sample (once,
	// outside the loop) — the ground truth is always f64, so compressed
	// planes are charged for their quantization error.
	truthStore := s
	if prec != embstore.F64 {
		if truthStore, err = embstore.FromMatrix(emb, embstore.DefaultShards); err != nil {
			b.Fatal(err)
		}
	}
	exact := ann.NewExact(truthStore, ann.Cosine)
	var approx, truth [][]graph.NodeID
	for qi := 0; qi < 20; qi++ {
		er, err := exact.Search(emb.Row(qi), k)
		if err != nil {
			b.Fatal(err)
		}
		ar, err := idx.Search(emb.Row(qi), k)
		if err != nil {
			b.Fatal(err)
		}
		truth = append(truth, resultIDs(er))
		approx = append(approx, resultIDs(ar))
	}
	recall, err := eval.MeanRecallAtK(approx, truth)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(emb.Row(i%n), k); err != nil {
			b.Fatal(err)
		}
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(recall, "recall@10")
	b.ReportMetric(float64(prec.BytesPerVector(servingDim)), "bytes_per_vector")
}

func resultIDs(rs []ann.Result) []graph.NodeID {
	out := make([]graph.NodeID, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// benchPrecisions is the slab matrix BenchmarkANNTopK sweeps.
var benchPrecisions = []embstore.Precision{embstore.F64, embstore.F32, embstore.SQ8}

// BenchmarkANNTopK compares exact scan, LSH probing and HNSW graph
// search at serving scales, each across the three slab precisions
// (recall@10 is always measured against full-precision exact search,
// and bytes_per_vector records the memory side of the trade). LSH bits
// grow with n to keep buckets small; HNSW runs at its defaults (the
// config whose 100k recall is gated at ≥ 0.95 by TestHNSWRecall100k;
// TestSQ8Recall gates the quantized plane).
func BenchmarkANNTopK(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		n := n
		for _, prec := range benchPrecisions {
			prec := prec
			b.Run(fmt.Sprintf("exact/n=%d/p=%s", n, prec), func(b *testing.B) {
				benchANN(b, n, prec, func(s *embstore.Store) (ann.Index, error) {
					return ann.NewExact(s, ann.Cosine), nil
				})
			})
			b.Run(fmt.Sprintf("lsh/n=%d/p=%s", n, prec), func(b *testing.B) {
				benchANN(b, n, prec, func(s *embstore.Store) (ann.Index, error) {
					cfg := ann.DefaultLSHConfig()
					if n >= 100_000 {
						cfg.Bits = 11
					}
					return ann.NewLSH(s, cfg)
				})
			})
			b.Run(fmt.Sprintf("hnsw/n=%d/p=%s", n, prec), func(b *testing.B) {
				benchANN(b, n, prec, func(s *embstore.Store) (ann.Index, error) {
					return ann.BuildHNSW(s, ann.DefaultHNSWConfig())
				})
			})
		}
	}
}

// BenchmarkKernels measures the vecmath hot kernels in isolation at
// the dims the serving benchmarks exercise. MB/s is total bytes
// touched per call (both operands; for the sq8 kernels the f64 query
// plus the int8 codes), so the same kernel's number is comparable
// across backends: run once as-is and once with EHNA_NOSIMD=1 (or
// -tags noasm) to measure the SIMD speedup on this machine. The
// active backend is reported once per sub-benchmark as backend=0
// (scalar), 1 (avx2) or 2 (neon).
func BenchmarkKernels(b *testing.B) {
	backendID := map[string]float64{"scalar": 0, "avx2": 1, "neon": 2}[vecmath.Backend()]
	for _, dim := range []int{32, 64, 128} {
		dim := dim
		rng := rand.New(rand.NewSource(4))
		a64 := make([]float64, dim)
		b64 := make([]float64, dim)
		a32 := make([]float32, dim)
		b32 := make([]float32, dim)
		for i := 0; i < dim; i++ {
			a64[i] = rng.NormFloat64()
			b64[i] = rng.NormFloat64()
			a32[i] = float32(a64[i])
			b32[i] = float32(b64[i])
		}
		aCode := make([]int8, dim)
		bCode := make([]int8, dim)
		aScale, aOffset, aSum := vecmath.EncodeSQ8(a64, aCode)
		bScale, bOffset, bSum := vecmath.EncodeSQ8(b64, bCode)
		aNorm := vecmath.Norm(a64)
		bNorm := vecmath.Norm(b64)
		qSum := vecmath.Sum(a64)
		var sinkF float64 // keep kernel results observable

		run := func(name string, bytes int, fn func()) {
			b.Run(fmt.Sprintf("%s/dim=%d", name, dim), func(b *testing.B) {
				b.SetBytes(int64(bytes))
				b.ReportMetric(backendID, "backend")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fn()
				}
			})
		}
		run("Dot", dim*16, func() { sinkF += vecmath.Dot(a64, b64) })
		run("SqDist", dim*16, func() { sinkF += vecmath.SqDist(a64, b64) })
		run("Dot32", dim*8, func() { sinkF += vecmath.Dot32(a32, b32) })
		run("SqDist32", dim*8, func() { sinkF += vecmath.SqDist32(a32, b32) })
		run("CosineWithNorms32", dim*8, func() {
			sinkF += vecmath.CosineWithNorms32(a32, b32, aNorm, bNorm)
		})
		run("DotSQ8", dim*9, func() { sinkF += vecmath.DotSQ8(a64, bCode, bScale, bOffset, qSum) })
		run("SqDistSQ8", dim*9, func() { sinkF += vecmath.SqDistSQ8(a64, bCode, bScale, bOffset) })
		run("DotSQ8Sym", dim*2, func() {
			sinkF += vecmath.DotSQ8Sym(aCode, bCode, aScale, aOffset, bScale, bOffset, aSum, bSum)
		})
		run("EncodeSQ8", dim*9, func() {
			s, o, c := vecmath.EncodeSQ8(a64, aCode)
			sinkF += s + o + float64(c)
		})
		if sinkF == 0.12345 {
			b.Log(sinkF)
		}
	}
}

// BenchmarkWALAppend measures the ingest path's logging cost: one
// record per Append (each paying its own buffer write) versus a
// 64-record AppendBatch (one durability wait for the whole batch).
// fsync=never isolates the encode+buffer cost from disk sync latency —
// the group-commit benefit under fsync=always is larger still.
func BenchmarkWALAppend(b *testing.B) {
	vec := make([]float64, servingDim)
	for i := range vec {
		vec[i] = float64(i) * 0.25
	}
	open := func(b *testing.B) *wal.Log {
		b.Helper()
		l, err := wal.Open(b.TempDir(), wal.Options{Sync: wal.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { l.Close() })
		return l
	}
	b.Run("single", func(b *testing.B) {
		l := open(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append(wal.OpUpsert, graph.NodeID(i), vec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch64", func(b *testing.B) {
		l := open(b)
		recs := make([]wal.Record, 64)
		for i := range recs {
			recs[i] = wal.Record{Op: wal.OpUpsert, ID: graph.NodeID(i), Vec: vec}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.AppendBatch(recs); err != nil {
				b.Fatal(err)
			}
		}
		// ns/op is per 64-record batch; records/op makes that explicit.
		b.ReportMetric(64, "records/op")
	})
}

// BenchmarkSnapshotLoad compares the three ways a daemon can get its
// store back at boot, at the dim-64 sq8 shape the beyond-RAM serving
// path targets: decoding the legacy gob snapshot, copying the flat v3
// format into heap slabs, and mmapping the v3 file (O(1) in dataset
// size — the header/table parse plus one CRC sweep of the mapping).
// MB/s is against the on-disk snapshot size.
func BenchmarkSnapshotLoad(b *testing.B) {
	const dim = 64
	for _, n := range []int{100_000, 1_000_000} {
		n := n
		s, err := embstore.NewPrecision(dim, embstore.DefaultShards, embstore.SQ8)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		vec := make([]float64, dim)
		for i := 0; i < n; i++ {
			for j := range vec {
				vec[j] = rng.NormFloat64()
			}
			if err := s.Upsert(graph.NodeID(i), vec); err != nil {
				b.Fatal(err)
			}
		}
		dir := b.TempDir()
		gobPath := filepath.Join(dir, "store.gob")
		v3Path := filepath.Join(dir, "store.snap")
		writeSnap := func(path string, write func(f *os.File) error) int64 {
			f, err := os.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			if err := write(f); err != nil {
				b.Fatal(err)
			}
			st, err := f.Stat()
			if err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			return st.Size()
		}
		gobSize := writeSnap(gobPath, func(f *os.File) error { return s.SaveSnapshot(f, uint64(n)) })
		v3Size := writeSnap(v3Path, func(f *os.File) error { return s.SaveSnapshotV3(f, uint64(n)) })

		b.Run(fmt.Sprintf("gob/n=%d", n), func(b *testing.B) {
			b.SetBytes(gobSize)
			for i := 0; i < b.N; i++ {
				f, err := os.Open(gobPath)
				if err != nil {
					b.Fatal(err)
				}
				st, _, err := embstore.LoadSnapshotAt(f, embstore.DefaultShards, embstore.SQ8)
				f.Close()
				if err != nil {
					b.Fatal(err)
				}
				if st.Len() != n {
					b.Fatal("short load")
				}
			}
		})
		b.Run(fmt.Sprintf("v3copy/n=%d", n), func(b *testing.B) {
			b.SetBytes(v3Size)
			for i := 0; i < b.N; i++ {
				st, _, err := embstore.LoadSnapshotV3(v3Path, embstore.DefaultShards)
				if err != nil {
					b.Fatal(err)
				}
				if st.Len() != n {
					b.Fatal("short load")
				}
			}
		})
		if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
			// The snapshots were just written, so the file is in page
			// cache: this is the warm number (restart, rotation).
			b.Run(fmt.Sprintf("mmap-warm/n=%d", n), func(b *testing.B) {
				b.SetBytes(v3Size)
				for i := 0; i < b.N; i++ {
					st, _, err := embstore.OpenMmap(v3Path)
					if err != nil {
						b.Fatal(err)
					}
					if st.Len() != n {
						b.Fatal("short load")
					}
					st.Close()
				}
			})
			// Evict the file's pages before each open: first boot on a
			// machine that has never read the snapshot. The CRC sweep
			// inside OpenMmap then faults every page in from disk, so
			// this is bounded by storage bandwidth, not parse cost.
			b.Run(fmt.Sprintf("mmap-cold/n=%d", n), func(b *testing.B) {
				b.SetBytes(v3Size)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := embstore.DropFileCache(v3Path); err != nil {
						b.Skipf("cannot drop page cache: %v", err)
					}
					b.StartTimer()
					st, _, err := embstore.OpenMmap(v3Path)
					if err != nil {
						b.Fatal(err)
					}
					if st.Len() != n {
						b.Fatal("short load")
					}
					st.Close()
				}
			})
		}
	}
}

// BenchmarkHNSWBuild measures graph construction from a loaded store —
// the cost -hnsw-graph snapshots let the daemon skip at boot.
func BenchmarkHNSWBuild(b *testing.B) {
	const n = 10_000
	rng := rand.New(rand.NewSource(3))
	emb := tensor.Randn(n, servingDim, 1, rng)
	s, err := embstore.FromMatrix(emb, embstore.DefaultShards)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ann.BuildHNSW(s, ann.DefaultHNSWConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionNodeClassification runs the node-classification
// application (community prediction on the labeled DBLP analogue).
func BenchmarkExtensionNodeClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunNodeClassification(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Accuracy["EHNA"], "EHNA_acc")
		b.ReportMetric(r.Accuracy["Node2Vec"], "N2V_acc")
	}
}
