// Visualization: one of the classic applications of node embeddings
// (Section I of the paper). EHNA embeddings of a 3-community co-author
// network are projected to 2-D with PCA and rendered as an ASCII scatter —
// the communities should appear as separate clusters.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/pca"
	"ehna/internal/walk"
)

func main() {
	const (
		perComm = 20
		comms   = 3
	)
	rng := rand.New(rand.NewSource(33))
	g := graph.NewTemporal(perComm * comms)
	for c := 0; c < comms; c++ {
		base := c * perComm
		for i := 0; i < 260; i++ {
			a := base + rng.Intn(perComm)
			b := base + rng.Intn(perComm)
			if a != b {
				_ = g.AddEdge(graph.NodeID(a), graph.NodeID(b), 1, rng.Float64())
			}
		}
	}
	// Sparse inter-community bridges.
	for i := 0; i < 8; i++ {
		a := rng.Intn(perComm * comms)
		b := rng.Intn(perComm * comms)
		if a != b {
			_ = g.AddEdge(graph.NodeID(a), graph.NodeID(b), 1, rng.Float64())
		}
	}
	g.Build()

	cfg := ehna.DefaultConfig()
	cfg.Dim = 16
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 5, WalkLen: 6}
	cfg.Epochs = 4
	cfg.Bidirectional = true
	cfg.Workers = 4
	model, err := ehna.NewModel(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	model.Train()
	emb := model.InferAll()

	res, err := pca.Fit(emb, pca.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	pts := res.Transform(emb)
	labels := make([]byte, emb.Rows)
	for i := range labels {
		labels[i] = byte('1' + i/perComm)
	}
	plot, err := pca.ScatterASCII(pts, labels, 64, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA projection of EHNA embeddings (digit = community):\n\n%s", plot)
	fmt.Printf("explained variance: PC1 %.3f, PC2 %.3f\n", res.Explained[0], res.Explained[1])
}
