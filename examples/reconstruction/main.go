// Network reconstruction: train EHNA and Node2Vec on the same social
// network and compare precision@P curves (the task of Figure 4).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ehna/internal/baselines/node2vec"
	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/skipgram"
	"ehna/internal/walk"
)

func main() {
	g, err := datagen.Generate(datagen.Digg, 0.06, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network: %d nodes, %d temporal edges\n", g.NumNodes(), g.NumEdges())

	// EHNA.
	cfg := ehna.DefaultConfig()
	cfg.Dim = 16
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 5, WalkLen: 6}
	cfg.Bidirectional = true
	cfg.Workers = 4
	model, err := ehna.NewModel(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	model.Train()
	ehnaEmb := model.InferAll()

	// Node2Vec (static baseline).
	n2vCfg := node2vec.Config{
		P: 1, Q: 1, NumWalks: 10, WalkLen: 40,
		SGNS: skipgram.Config{Dim: 16, Window: 5, Negatives: 5, LR: 0.05, Epochs: 3, Workers: 4},
	}
	n2vEmb, err := node2vec.Embed(g, n2vCfg, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Rank pairs among a node sample and report precision@P.
	rng := rand.New(rand.NewSource(9))
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) > 0 {
			nodes = append(nodes, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	if len(nodes) > 150 {
		nodes = nodes[:150]
	}
	ps := []int{100, 300, 1000, 3000}
	ehnaPrec, err := eval.PrecisionAtP(g, ehnaEmb, nodes, ps)
	if err != nil {
		log.Fatal(err)
	}
	n2vPrec, err := eval.PrecisionAtP(g, n2vEmb, nodes, ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s%12s%12s\n", "P", "EHNA", "Node2Vec")
	for i, p := range ps {
		fmt.Printf("%-10d%12.4f%12.4f\n", p, ehnaPrec[i], n2vPrec[i])
	}
}
