// Embedding drift: EHNA's temporal embeddings move when a node's
// neighborhood changes. This example plants "career movers" — authors who
// abruptly switch communities late in the timeline — and shows that their
// embeddings drift far more between the early model and the full model
// than stable authors', making drift a usable change-detection signal.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

func main() {
	const (
		perSide = 30
		movers  = 4 // nodes 0..3 switch sides at t ≥ 0.7
	)
	rng := rand.New(rand.NewSource(21))
	g := graph.NewTemporal(2 * perSide)
	add := func(u, v int, t float64) {
		if u != v {
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1, t)
		}
	}
	// Two communities interacting internally throughout [0, 1]...
	for i := 0; i < 450; i++ {
		t := rng.Float64()
		a := rng.Intn(perSide)
		b := rng.Intn(perSide)
		add(a, b, t)
		add(perSide+rng.Intn(perSide), perSide+rng.Intn(perSide), t)
	}
	// ...except the movers, whose late edges all go to the other side.
	for m := 0; m < movers; m++ {
		for i := 0; i < 20; i++ {
			add(m, perSide+rng.Intn(perSide), 0.7+0.3*rng.Float64())
		}
	}
	g.Build()

	train := func(gr *graph.Temporal) *tensor.Matrix {
		cfg := ehna.DefaultConfig()
		cfg.Dim = 16
		cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 5, WalkLen: 6}
		cfg.Epochs = 2
		cfg.Bidirectional = true
		cfg.Workers = 4
		m, err := ehna.NewModel(gr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		m.Train()
		return m.InferAll()
	}

	// Early model: the world before the switch.
	early, _, err := g.SplitByTime(0.35)
	if err != nil {
		log.Fatal(err)
	}
	embEarly := train(early)
	embFull := train(g)

	type drift struct {
		node int
		d    float64
	}
	var drifts []drift
	for v := 0; v < g.NumNodes(); v++ {
		drifts = append(drifts, drift{v, tensor.SqDistVec(embEarly.Row(v), embFull.Row(v))})
	}
	sort.Slice(drifts, func(i, j int) bool { return drifts[i].d > drifts[j].d })

	fmt.Println("top-8 drifting nodes (movers are 0..3):")
	hits := 0
	for _, d := range drifts[:8] {
		tag := ""
		if d.node < movers {
			tag = "  ← planted mover"
			hits++
		}
		fmt.Printf("  node %3d  drift %.4f%s\n", d.node, d.d, tag)
	}
	fmt.Printf("\n%d of %d planted movers rank in the top 8 by drift\n", hits, movers)
}
