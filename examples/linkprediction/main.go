// Link prediction: the paper's headline task on a co-author network. The
// 20% most recent edges are held out; EHNA trains on the remainder and a
// logistic regression probes the four edge operators of Table II.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ehna/internal/classify"
	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/eval"
	"ehna/internal/walk"
)

func main() {
	full, err := datagen.Generate(datagen.DBLP, 0.08, 3)
	if err != nil {
		log.Fatal(err)
	}
	train, held, err := full.SplitByTime(0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train: %d edges; held out (most recent): %d edges\n",
		train.NumEdges(), len(held))

	cfg := ehna.DefaultConfig()
	cfg.Dim = 16
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 5, WalkLen: 6}
	cfg.Bidirectional = true
	cfg.Workers = 4
	model, err := ehna.NewModel(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	model.Train()
	emb := model.InferAll()

	rng := rand.New(rand.NewSource(11))
	data, err := eval.BuildLinkPredData(full, held, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s%10s%10s%10s%10s\n", "Operator", "AUC", "F1", "Prec", "Recall")
	for _, op := range eval.Operators {
		trainD, testD, err := data.Split(0.5, rng)
		if err != nil {
			log.Fatal(err)
		}
		clf, err := classify.Train(eval.EdgeFeatures(emb, trainD.Pairs, op), trainD.Labels, classify.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		Xte := eval.EdgeFeatures(emb, testD.Pairs, op)
		auc, err := eval.AUC(clf.PredictProba(Xte), testD.Labels)
		if err != nil {
			log.Fatal(err)
		}
		conf, err := eval.Confuse(clf.Predict(Xte), testD.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s%10.4f%10.4f%10.4f%10.4f\n",
			op, auc, conf.F1(), conf.Precision(), conf.Recall())
	}
}
