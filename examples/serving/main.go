// Serving walkthrough: the full train → serialize → embstore → ann →
// ehnad pipeline. It trains EHNA on a synthetic temporal network,
// exports both snapshot formats the daemon accepts, builds the sharded
// store and all three ANN indexes in-process (exact scan, LSH, HNSW),
// audits the approximate indexes' recall against exact search, saves
// the HNSW graph snapshot the daemon can boot from without rebuilding,
// and prints the exact commands to serve the artifacts with cmd/ehnad.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ehna/internal/ann"
	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/embstore"
	"ehna/internal/eval"
	"ehna/internal/graph"
	"ehna/internal/vecmath"
	"ehna/internal/walk"
)

func main() {
	// 1. Train embeddings on a temporal graph (the Digg analogue).
	g, err := datagen.Generate(datagen.Digg, 0.25, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d temporal edges\n", g.NumNodes(), g.NumEdges())

	cfg := ehna.DefaultConfig()
	cfg.Dim = 16
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 3, WalkLen: 4}
	cfg.Workers = 4
	model, err := ehna.NewModel(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for epoch, loss := range model.Train() {
		fmt.Printf("epoch %d: loss %.4f\n", epoch+1, loss)
	}

	// 2. Serialize the serving artifacts. The model snapshot carries the
	//    raw embedding table (+ parameters, for resumed training); the
	//    embstore snapshot carries the attention-aggregated InferAll
	//    embeddings — the vectors the paper's evaluation actually uses.
	outDir := "serving-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	modelPath := filepath.Join(outDir, "model.gob")
	mf, err := os.Create(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(mf); err != nil {
		log.Fatal(err)
	}
	mf.Close()

	emb := model.InferAll()
	store, err := embstore.FromMatrix(emb, embstore.DefaultShards)
	if err != nil {
		log.Fatal(err)
	}
	storePath := filepath.Join(outDir, "store.gob")
	sf, err := os.Create(storePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Save(sf); err != nil {
		log.Fatal(err)
	}
	sf.Close()

	// The flat v3 snapshot of the same store: the artifact -store=mmap
	// serves in place, without copying vectors onto the heap.
	snapPath := filepath.Join(outDir, "store.snap")
	vf, err := os.Create(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.SaveSnapshotV3(vf, 0); err != nil {
		log.Fatal(err)
	}
	vf.Close()
	fmt.Printf("artifacts: %s (model), %s (store, %d×%d across %d shards), %s (flat v3)\n",
		modelPath, storePath, store.Len(), store.Dim(), store.NumShards(), snapPath)

	// 3. Build all three indexes and answer the same query. The HNSW
	//    graph is also snapshotted so the daemon can boot without paying
	//    the build again (-hnsw-graph). Distance kernels run on the
	//    backend cpuid picked at startup ("avx2", "neon" or "scalar") —
	//    the same value /healthz and /metrics report once serving.
	fmt.Printf("vecmath kernel backend: %s\n", vecmath.Backend())
	exact := ann.NewExact(store, ann.Cosine)
	lsh, err := ann.NewLSH(store, ann.DefaultLSHConfig())
	if err != nil {
		log.Fatal(err)
	}
	hnsw, err := ann.BuildHNSW(store, ann.DefaultHNSWConfig())
	if err != nil {
		log.Fatal(err)
	}
	graphPath := filepath.Join(outDir, "hnsw.gob")
	gf, err := os.Create(graphPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := hnsw.SaveGraph(gf); err != nil {
		log.Fatal(err)
	}
	gf.Close()
	const target, k = 0, 10
	q, _ := store.Get(target)
	exactTop, err := exact.Search(q, k+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact top-%d of node %d (cosine):\n", k, target)
	for _, r := range exactTop {
		if r.ID == target {
			continue
		}
		fmt.Printf("  node %4d  score %.4f\n", r.ID, r.Score)
	}

	// 4. Audit approximate recall@k against exact over a query sample —
	//    the number to watch when tuning -tables/-bits (LSH) or
	//    -m/-ef-search (HNSW) for your store size.
	nq := 50
	if nq > store.Len() {
		nq = store.Len()
	}
	for _, idx := range []struct {
		name  string
		index ann.Index
	}{{"LSH", lsh}, {"HNSW", hnsw}} {
		var approx, truth [][]graph.NodeID
		for qi := 0; qi < nq; qi++ {
			qv, ok := store.Get(graph.NodeID(qi))
			if !ok {
				continue
			}
			er, err := exact.Search(qv, k)
			if err != nil {
				log.Fatal(err)
			}
			ar, err := idx.index.Search(qv, k)
			if err != nil {
				log.Fatal(err)
			}
			truth = append(truth, resultIDs(er))
			approx = append(approx, resultIDs(ar))
		}
		recall, err := eval.MeanRecallAtK(approx, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s recall@%d vs exact over %d queries: %.3f\n", idx.name, k, nq, recall)
	}

	// 5. Serve it. Either embedding artifact boots the daemon; pick the
	//    index with -index (hnsw reuses the saved graph snapshot), and
	//    add -wal to make the write path durable.
	walDir := filepath.Join(outDir, "wal")
	fmt.Printf(`
serve the aggregated embeddings (recommended):
  go run ./cmd/ehnad -snapshot %s

with the sublinear HNSW index, booting from the saved graph:
  go run ./cmd/ehnad -snapshot %s -index hnsw -hnsw-graph %s

durably — writes WAL-logged before apply, snapshots rotated, HNSW
tombstones compacted in the background (the -snapshot seed is only
read on the first boot; afterwards %s recovers everything):
  go run ./cmd/ehnad -snapshot %s -index hnsw -wal %s

beyond RAM — mmap the flat v3 snapshot instead of copying it onto the
heap: boot is O(1) in dataset size and the OS pages vectors in on
demand, so the set may exceed memory (/healthz reports the mapping
and overlay sizes; see "Beyond-RAM serving" in the README):
  go run ./cmd/ehnad -snapshot %s -store=mmap -index hnsw -hnsw-graph %s

or the raw table straight from the model snapshot:
  go run ./cmd/ehnad -model %s

then query:
  curl -s localhost:8080/healthz
  curl -s -X POST localhost:8080/v1/neighbors -d '{"id":%d,"k":%d}'
  curl -s -X POST localhost:8080/v1/score -d '{"u":0,"v":1,"op":"hadamard"}'
  curl -s -X POST localhost:8080/v1/upsert -d '{"id":900000,"vector":[...]}'
  curl -s -X POST localhost:8080/v1/delete -d '{"id":900000}'
  curl -s localhost:8080/v1/export > backup.gob

watch it (Prometheus text format), then prove it holds under open-loop
load with an SLO gate (exit code 0 = pass):
  curl -s localhost:8080/metrics
  go run ./cmd/ehnad-loadgen -rate 2000 -duration 30s -read-frac 0.9 \
      -slo "p99<5ms,errors<1%%" -json bench.json

scale out: two shards behind the scatter-gather router, shard a
replicated by a WAL-shipping follower that auto-promotes on leader
death (see "Distributed serving" in the README; clients only ever
talk to the router):
  go run ./cmd/ehnad -addr :8081 -wal %s-a  -dim %d -index hnsw
  go run ./cmd/ehnad -addr :8082 -wal %s-b  -dim %d -index hnsw
  go run ./cmd/ehnad -addr :8083 -wal %s-af -dim %d -index hnsw \
      -follow http://localhost:8081
  go run ./cmd/ehnad-router -listen :8090 -failover \
      -shard a=http://localhost:8081,http://localhost:8083 \
      -shard b=http://localhost:8082
  curl -s -X POST localhost:8090/v1/neighbors -d '{"id":%d,"k":%d}'
`, storePath, storePath, graphPath, walDir, storePath, walDir, snapPath, graphPath, modelPath, target, k,
		walDir, cfg.Dim, walDir, cfg.Dim, walDir, cfg.Dim, target, k)
}

func resultIDs(rs []ann.Result) []graph.NodeID {
	out := make([]graph.NodeID, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}
