// Quickstart: build a small temporal network, train EHNA embeddings, and
// list the nearest neighbors of a node in the learned space.
package main

import (
	"fmt"
	"log"
	"sort"

	"ehna/internal/datagen"
	"ehna/internal/ehna"
	"ehna/internal/graph"
	"ehna/internal/tensor"
	"ehna/internal/walk"
)

func main() {
	// 1. Get a temporal network. Here: a small synthetic co-author network;
	//    swap in graph.ReadTSV to load your own "u v [w] t" edge list.
	g, err := datagen.Coauthor(datagen.CoauthorConfig{
		Authors: 120, Papers: 400, Communities: 6,
		TeamMin: 2, TeamMax: 4, RepeatCollab: 0.5, Mixing: 0.05, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d authors, %d temporal co-authorship edges\n",
		g.NumNodes(), g.NumEdges())

	// 2. Configure and train EHNA.
	cfg := ehna.DefaultConfig()
	cfg.Dim = 16
	cfg.Walk = walk.TemporalConfig{P: 1, Q: 1, NumWalks: 5, WalkLen: 6}
	cfg.Epochs = 2
	cfg.Bidirectional = true
	cfg.Workers = 4
	model, err := ehna.NewModel(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for epoch, loss := range model.Train() {
		fmt.Printf("epoch %d: loss %.4f\n", epoch+1, loss)
	}

	// 3. Read out the final embeddings (one L2-normalized row per node).
	emb := model.InferAll()

	// 4. Use them: nearest neighbors of author 0 by Euclidean distance.
	const target = 0
	type nb struct {
		id   int
		dist float64
	}
	var nbs []nb
	for v := 0; v < emb.Rows; v++ {
		if v == target {
			continue
		}
		nbs = append(nbs, nb{v, tensor.SqDistVec(emb.Row(target), emb.Row(v))})
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].dist < nbs[j].dist })
	fmt.Printf("\nnearest neighbors of author %d:\n", target)
	for _, n := range nbs[:5] {
		collab := "no"
		if g.HasEdge(graph.NodeID(target), graph.NodeID(n.id)) {
			collab = "yes"
		}
		fmt.Printf("  author %3d  dist %.4f  co-authored: %s\n", n.id, n.dist, collab)
	}
}
