module ehna

go 1.21
